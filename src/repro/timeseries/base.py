"""Common interfaces for prediction models.

Every model exposes the same three capabilities the PRESTO proxy needs:

* :meth:`TimeSeriesModel.fit` — train on a window of historical readings;
* :meth:`TimeSeriesModel.forecast` — mean + standard deviation for the next
  ``h`` sampling epochs (used for extrapolation and confidence-aware query
  answering);
* :meth:`TimeSeriesModel.predict_next` / :meth:`TimeSeriesModel.observe` —
  the cheap one-step loop that both the proxy and the sensor replicate so a
  value the sensor *doesn't* push is substituted identically on both sides
  (the model-driven push protocol of Section 2).

Models also report ``parameter_bytes`` — the cost of shipping their
parameters to a sensor — which the push protocol charges to the radio.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Forecast:
    """Multi-step forecast: per-step mean and standard deviation."""

    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self) -> None:
        if self.mean.shape != self.std.shape:
            raise ValueError(
                f"mean/std shape mismatch: {self.mean.shape} vs {self.std.shape}"
            )

    @property
    def horizon(self) -> int:
        """Number of forecast steps."""
        return int(self.mean.shape[0])

    def interval(self, z: float = 1.96) -> tuple[np.ndarray, np.ndarray]:
        """Symmetric confidence band at *z* standard deviations."""
        return self.mean - z * self.std, self.mean + z * self.std


@dataclass(frozen=True)
class ModelSpec:
    """Lightweight description of a model for logging and selection."""

    family: str
    order: tuple[int, ...] = ()
    n_params: int = 0
    extras: dict = field(default_factory=dict)

    def __str__(self) -> str:
        order = ",".join(str(o) for o in self.order)
        return f"{self.family}({order})" if order else self.family


class TimeSeriesModel(abc.ABC):
    """Abstract base for all temporal models in the prediction engine."""

    #: seconds between consecutive samples; set by fit() callers that know it
    sample_period_s: float = 30.0

    @abc.abstractmethod
    def fit(self, values: np.ndarray, timestamps: np.ndarray | None = None) -> "TimeSeriesModel":
        """Train on *values* (optionally timestamped); returns self."""

    @abc.abstractmethod
    def forecast(self, steps: int) -> Forecast:
        """Forecast the next *steps* epochs after the training window."""

    @abc.abstractmethod
    def predict_next(self) -> float:
        """One-step-ahead prediction given everything observed so far."""

    @abc.abstractmethod
    def observe(self, value: float) -> None:
        """Advance the one-step loop with the realised value.

        The sensor calls this with the *actual* reading; the proxy calls it
        with the actual reading when pushed, or with :meth:`predict_next`'s
        output when the sensor stayed silent — keeping the two copies of the
        model state bit-identical.
        """

    def align_to_time(self, next_sample_time: float) -> None:
        """Align internal clocks so :meth:`predict_next` targets
        *next_sample_time*.

        Purely temporal models (AR/ARIMA/Markov) carry no wall clock and
        ignore this; time-of-day models override it.  The push protocol
        calls it on both replicas at activation so a model fitted at epoch
        ``E`` but activated at epoch ``A > E`` predicts the right bin.
        """

    @abc.abstractmethod
    def spec(self) -> ModelSpec:
        """Describe the fitted model."""

    @property
    @abc.abstractmethod
    def parameter_bytes(self) -> int:
        """Wire size of the parameters a proxy ships to a sensor."""

    @property
    @abc.abstractmethod
    def residual_std(self) -> float:
        """In-sample one-step residual standard deviation."""

    @property
    @abc.abstractmethod
    def check_cycles(self) -> float:
        """CPU cycles a sensor spends verifying one reading against the
        model — the paper's asymmetry requirement made measurable."""


@dataclass
class FittedModel:
    """A model plus the data statistics it was fitted on (for selection)."""

    model: TimeSeriesModel
    train_n: int
    log_likelihood: float

    @property
    def n_params(self) -> int:
        """Free parameters (for AIC/BIC)."""
        return self.model.spec().n_params


def as_float_array(values: np.ndarray, name: str = "values") -> np.ndarray:
    """Validate and convert a 1-D float input array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def gaussian_log_likelihood(residuals: np.ndarray) -> float:
    """Gaussian log-likelihood of residuals at their MLE variance."""
    residuals = np.asarray(residuals, dtype=np.float64)
    n = residuals.size
    if n == 0:
        return 0.0
    variance = float(np.mean(residuals**2))
    variance = max(variance, 1e-12)
    return -0.5 * n * (np.log(2.0 * np.pi * variance) + 1.0)
