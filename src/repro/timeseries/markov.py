"""Discretised Markov-chain model for the temporal axis.

Section 3 points at "a combination of multivariate models for the spatial
axis and Markov model for the temporal axis" (the BBQ design).  The value
range is discretised into bins; transitions between consecutive readings are
counted with Laplace smoothing; prediction is the expected value of the next
state's bin centre.  Sensors can verify a reading against this model with a
single table row lookup.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.base import (
    Forecast,
    ModelSpec,
    TimeSeriesModel,
    as_float_array,
)


class MarkovChainModel(TimeSeriesModel):
    """First-order Markov chain over a uniform value discretisation."""

    def __init__(
        self,
        n_states: int = 32,
        sample_period_s: float = 30.0,
        smoothing: float = 0.5,
    ) -> None:
        if n_states < 2:
            raise ValueError(f"need >= 2 states, got {n_states}")
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        self.n_states = int(n_states)
        self.sample_period_s = float(sample_period_s)
        self.smoothing = float(smoothing)
        self._low = 0.0
        self._high = 1.0
        self._transition: np.ndarray | None = None
        self._centres: np.ndarray | None = None
        self._residual_std = 0.0
        self._current_state = 0

    # -- discretisation ------------------------------------------------------

    def state_of(self, value: float) -> int:
        """Bin index of *value* (clipped to the training range)."""
        if self._centres is None:
            raise RuntimeError("model not fitted")
        span = self._high - self._low
        if span <= 0:
            return 0
        index = int((value - self._low) / span * self.n_states)
        return min(max(index, 0), self.n_states - 1)

    # -- fitting ---------------------------------------------------------------

    def fit(
        self, values: np.ndarray, timestamps: np.ndarray | None = None
    ) -> "MarkovChainModel":
        """Estimate the transition matrix from consecutive pairs."""
        values = as_float_array(values)
        if values.size < 3:
            raise ValueError(f"need >= 3 samples, got {values.size}")
        self._low = float(values.min())
        self._high = float(values.max())
        if self._high <= self._low:
            self._high = self._low + 1e-6
        width = (self._high - self._low) / self.n_states
        self._centres = (
            self._low + (np.arange(self.n_states, dtype=np.float64) + 0.5) * width
        )
        counts = np.full(
            (self.n_states, self.n_states), self.smoothing, dtype=np.float64
        )
        states = np.asarray([self.state_of(v) for v in values], dtype=np.int64)
        np.add.at(counts, (states[:-1], states[1:]), 1.0)
        row_sums = counts.sum(axis=1, keepdims=True)
        # never-visited rows (possible with zero smoothing) become uniform
        empty = row_sums[:, 0] == 0.0
        counts[empty] = 1.0
        row_sums[empty] = float(self.n_states)
        self._transition = counts / row_sums

        predictions = self._centres[
            np.argmax(self._transition[states[:-1]], axis=1)
        ]
        self._residual_std = float(np.std(values[1:] - predictions))
        self._current_state = int(states[-1])
        return self

    # -- prediction ---------------------------------------------------------------

    def _require_fit(self) -> np.ndarray:
        if self._transition is None or self._centres is None:
            raise RuntimeError("model not fitted")
        return self._transition

    def predict_next(self) -> float:
        """Expected value of the next reading given the current state."""
        transition = self._require_fit()
        row = transition[self._current_state]
        return float(np.dot(row, self._centres))

    def observe(self, value: float) -> None:
        """Move to the state of the realised value."""
        self._require_fit()
        self._current_state = self.state_of(float(value))

    def forecast(self, steps: int) -> Forecast:
        """h-step forecast by powering the chain from the current state."""
        transition = self._require_fit()
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        distribution = np.zeros(self.n_states, dtype=np.float64)
        distribution[self._current_state] = 1.0
        mean = np.empty(steps, dtype=np.float64)
        std = np.empty(steps, dtype=np.float64)
        for step in range(steps):
            distribution = distribution @ transition
            mean[step] = float(np.dot(distribution, self._centres))
            second = float(np.dot(distribution, self._centres**2))
            std[step] = float(np.sqrt(max(second - mean[step] ** 2, 0.0)))
        return Forecast(mean=mean, std=std)

    def stationary_distribution(self, iterations: int = 200) -> np.ndarray:
        """Approximate stationary distribution by power iteration."""
        transition = self._require_fit()
        distribution = np.full(self.n_states, 1.0 / self.n_states)
        for _ in range(iterations):
            nxt = distribution @ transition
            if np.allclose(nxt, distribution, atol=1e-12):
                distribution = nxt
                break
            distribution = nxt
        return distribution

    # -- metadata --------------------------------------------------------------

    def spec(self) -> ModelSpec:
        """Describe the model ("markov(states)")."""
        return ModelSpec(
            family="markov",
            order=(self.n_states,),
            n_params=self.n_states * (self.n_states - 1),
        )

    @property
    def parameter_bytes(self) -> int:
        """Transition matrix quantised to 1 byte/cell + range (8) + meta."""
        return self.n_states * self.n_states + 8 + 2

    @property
    def residual_std(self) -> float:
        """In-sample one-step residual standard deviation."""
        return self._residual_std

    @property
    def check_cycles(self) -> float:
        """Bin index + row lookup + expected value: ~n_states MACs."""
        return 4.0 * self.n_states + 30.0
