"""Multivariate Gaussian model over a group of sensors (BBQ-style).

Used by the proxy for *spatial* extrapolation: "Cached data from other
nearby sensors ... can be used for such extrapolation" (Section 2).  The
model learns the joint mean/covariance of the sensors a proxy manages; when
a query needs a sensor whose cache entry is stale or missing, the proxy
conditions the joint on whichever sensors *are* fresh and answers with the
conditional mean, with the conditional variance bounding the error.
"""

from __future__ import annotations

import numpy as np


class MultivariateGaussianModel:
    """Joint Gaussian over ``n`` co-located sensors.

    Fitted from a (samples x sensors) matrix of aligned historical readings;
    regularised so conditioning stays well-posed even with short windows.
    """

    def __init__(self, regularization: float = 1e-6) -> None:
        if regularization < 0:
            raise ValueError(f"regularization must be >= 0, got {regularization}")
        self.regularization = float(regularization)
        self._mean: np.ndarray | None = None
        self._cov: np.ndarray | None = None

    @property
    def n_sensors(self) -> int:
        """Number of sensors in the joint model."""
        if self._mean is None:
            raise RuntimeError("model not fitted")
        return int(self._mean.shape[0])

    def fit(self, readings: np.ndarray) -> "MultivariateGaussianModel":
        """Fit mean and covariance from aligned rows of readings."""
        readings = np.asarray(readings, dtype=np.float64)
        if readings.ndim != 2:
            raise ValueError(f"expected (samples, sensors), got shape {readings.shape}")
        samples, sensors = readings.shape
        if samples < 2:
            raise ValueError(f"need >= 2 samples, got {samples}")
        if not np.all(np.isfinite(readings)):
            raise ValueError("readings contain non-finite entries")
        self._mean = readings.mean(axis=0)
        centred = readings - self._mean
        self._cov = (centred.T @ centred) / (samples - 1)
        self._cov = self._cov + self.regularization * np.eye(sensors)
        return self

    def _require_fit(self) -> tuple[np.ndarray, np.ndarray]:
        if self._mean is None or self._cov is None:
            raise RuntimeError("model not fitted")
        return self._mean, self._cov

    def marginal(self, index: int) -> tuple[float, float]:
        """Marginal ``(mean, std)`` of one sensor."""
        mean, cov = self._require_fit()
        return float(mean[index]), float(np.sqrt(max(cov[index, index], 0.0)))

    def condition(
        self, observed: dict[int, float]
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """Condition the joint on observed sensor values.

        Returns ``(cond_mean, cond_std, hidden_indices)`` for the unobserved
        sensors, using the standard Gaussian conditioning identities.
        Observing nothing returns the prior marginals; observing everything
        returns empty arrays.
        """
        mean, cov = self._require_fit()
        n = mean.shape[0]
        observed_idx = sorted(observed)
        for index in observed_idx:
            if index < 0 or index >= n:
                raise IndexError(f"sensor index {index} out of range 0..{n - 1}")
        hidden_idx = [i for i in range(n) if i not in observed]
        if not hidden_idx:
            return np.zeros(0), np.zeros(0), []
        if not observed_idx:
            stds = np.sqrt(np.clip(np.diag(cov)[hidden_idx], 0.0, None))
            return mean[hidden_idx].copy(), stds, hidden_idx

        mu_h = mean[hidden_idx]
        mu_o = mean[observed_idx]
        sigma_hh = cov[np.ix_(hidden_idx, hidden_idx)]
        sigma_ho = cov[np.ix_(hidden_idx, observed_idx)]
        sigma_oo = cov[np.ix_(observed_idx, observed_idx)]
        delta = np.asarray(
            [observed[i] for i in observed_idx], dtype=np.float64
        ) - mu_o
        solve = np.linalg.solve(sigma_oo, delta)
        cond_mean = mu_h + sigma_ho @ solve
        gain = np.linalg.solve(sigma_oo, sigma_ho.T)
        cond_cov = sigma_hh - sigma_ho @ gain
        cond_std = np.sqrt(np.clip(np.diag(cond_cov), 0.0, None))
        return cond_mean, cond_std, hidden_idx

    def estimate(self, sensor: int, observed: dict[int, float]) -> tuple[float, float]:
        """Conditional ``(mean, std)`` of one sensor given the others.

        If *sensor* itself is in *observed*, its value is returned with
        zero uncertainty.
        """
        if sensor in observed:
            return float(observed[sensor]), 0.0
        cond_mean, cond_std, hidden_idx = self.condition(observed)
        position = hidden_idx.index(sensor)
        return float(cond_mean[position]), float(cond_std[position])

    def correlation_matrix(self) -> np.ndarray:
        """Pearson correlations implied by the fitted covariance."""
        _, cov = self._require_fit()
        stds = np.sqrt(np.clip(np.diag(cov), 1e-18, None))
        return cov / np.outer(stds, stds)
