"""ARIMA(p, d, q) implemented from scratch (Hannan–Rissanen estimation).

statsmodels is unavailable offline, so the classic two-stage Hannan–Rissanen
procedure is implemented directly on numpy:

1. difference the series ``d`` times;
2. fit a long AR model by least squares and take its residuals as proxies
   for the unobserved innovations;
3. regress the differenced series on ``p`` of its own lags and ``q`` lagged
   residual proxies to obtain the ARMA coefficients.

Forecasting runs the ARMA recursion forward (future innovations = 0) and
integrates the differences back.  Forecast variance uses the psi-weight
expansion.  This covers everything the PRESTO proxy needs: multi-step
extrapolation with confidence, one-step prediction for push checks, and a
compact parameter set to ship to sensors.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.timeseries.ar import fit_ar_ols
from repro.timeseries.base import Forecast, ModelSpec, TimeSeriesModel, as_float_array


def difference(values: np.ndarray, d: int) -> np.ndarray:
    """Apply ``d`` rounds of first differencing."""
    values = np.asarray(values, dtype=np.float64)
    for _ in range(d):
        values = np.diff(values)
    return values


def undifference(
    forecast_diff: np.ndarray, tail_values: np.ndarray, d: int
) -> np.ndarray:
    """Integrate a forecast of the ``d``-times differenced series.

    ``tail_values`` are the last ``d`` levels of the *original* series (or
    enough of its partial differences) — concretely the last value of each
    difference order 0..d-1, oldest order first.
    """
    if d == 0:
        return np.asarray(forecast_diff, dtype=np.float64).copy()
    if tail_values.shape[0] != d:
        raise ValueError(f"need {d} tail values, got {tail_values.shape[0]}")
    result = np.asarray(forecast_diff, dtype=np.float64)
    for level in range(d - 1, -1, -1):
        result = tail_values[level] + np.cumsum(result)
    return result


class ARIMAModel(TimeSeriesModel):
    """ARIMA(p, d, q) via Hannan–Rissanen, with streaming one-step state."""

    def __init__(
        self,
        order: tuple[int, int, int] = (2, 0, 1),
        sample_period_s: float = 30.0,
        long_ar_order: int | None = None,
    ) -> None:
        p, d, q = order
        if p < 0 or d < 0 or q < 0 or (p == 0 and q == 0):
            raise ValueError(f"invalid ARIMA order {order!r}")
        if d > 2:
            raise ValueError(f"d > 2 is not supported (got {d})")
        self.p, self.d, self.q = int(p), int(d), int(q)
        self.sample_period_s = float(sample_period_s)
        self._long_ar_order = long_ar_order
        self._phi = np.zeros(self.p, dtype=np.float64)
        self._theta = np.zeros(self.q, dtype=np.float64)
        self._mu = 0.0
        self._sigma = 0.0
        self._fitted = False
        # streaming state: recent *differenced* values and innovations,
        # plus the tail needed to undifference predictions back to levels
        self._recent_w: deque[float] = deque(maxlen=max(self.p, 1))
        self._recent_eps: deque[float] = deque(maxlen=max(self.q, 1))
        self._level_tail: deque[float] = deque(maxlen=max(self.d, 1))

    # -- estimation ----------------------------------------------------------

    def fit(self, values: np.ndarray, timestamps: np.ndarray | None = None) -> "ARIMAModel":
        """Fit by Hannan–Rissanen on evenly spaced *values*."""
        values = as_float_array(values)
        w = difference(values, self.d)
        min_needed = max(self.p, self.q) + self.q + self.p + 8
        if w.size < min_needed:
            raise ValueError(
                f"need at least {min_needed} differenced samples, got {w.size}"
            )
        self._mu = float(w.mean())
        centred = w - self._mu

        if self.q == 0:
            phi, _, variance = fit_ar_ols(centred + self._mu, self.p) if self.p else (
                np.zeros(0), 0.0, float(np.var(centred)))
            self._phi = np.asarray(phi, dtype=np.float64)
            self._theta = np.zeros(0, dtype=np.float64)
            residuals = self._in_sample_residuals(centred)
            self._sigma = float(np.sqrt(np.mean(residuals**2)))
        else:
            long_order = self._long_ar_order or max(
                2 * (self.p + self.q), int(np.floor(np.log(w.size) ** 2))
            )
            long_order = min(long_order, w.size // 3)
            long_order = max(long_order, self.p + self.q)
            eps_hat = self._long_ar_residuals(centred, long_order)
            self._stage2_regression(centred, eps_hat, long_order)
            residuals = self._in_sample_residuals(centred)
            self._sigma = float(np.sqrt(np.mean(residuals**2)))

        self._fitted = True
        self._reset_streaming_state(values, centred)
        return self

    def _long_ar_residuals(self, centred: np.ndarray, long_order: int) -> np.ndarray:
        """Stage 1: residuals of a long AR fit (innovation proxies)."""
        rows = centred.size - long_order
        design = np.empty((rows, long_order), dtype=np.float64)
        for lag in range(1, long_order + 1):
            design[:, lag - 1] = centred[long_order - lag : centred.size - lag]
        target = centred[long_order:]
        coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
        eps = np.zeros_like(centred)
        eps[long_order:] = target - design @ coeffs
        return eps

    def _stage2_regression(
        self, centred: np.ndarray, eps_hat: np.ndarray, long_order: int
    ) -> None:
        """Stage 2: joint OLS on p AR lags and q innovation lags."""
        start = max(self.p, self.q, long_order)
        rows = centred.size - start
        design = np.empty((rows, self.p + self.q), dtype=np.float64)
        for lag in range(1, self.p + 1):
            design[:, lag - 1] = centred[start - lag : centred.size - lag]
        for lag in range(1, self.q + 1):
            design[:, self.p + lag - 1] = eps_hat[start - lag : eps_hat.size - lag]
        target = centred[start:]
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        self._phi = np.asarray(solution[: self.p], dtype=np.float64)
        self._theta = np.asarray(solution[self.p :], dtype=np.float64)

    def _in_sample_residuals(self, centred: np.ndarray) -> np.ndarray:
        """Filter the series through the fitted ARMA to recover residuals."""
        eps = np.zeros_like(centred)
        for t in range(centred.size):
            prediction = 0.0
            for i in range(1, min(self.p, t) + 1):
                prediction += self._phi[i - 1] * centred[t - i]
            for j in range(1, min(self.q, t) + 1):
                prediction += self._theta[j - 1] * eps[t - j]
            eps[t] = centred[t] - prediction
        return eps

    def _reset_streaming_state(self, values: np.ndarray, centred: np.ndarray) -> None:
        residuals = self._in_sample_residuals(centred)
        self._recent_w.clear()
        for v in centred[-max(self.p, 1):]:
            self._recent_w.append(float(v))
        self._recent_eps.clear()
        for e in residuals[-max(self.q, 1):]:
            self._recent_eps.append(float(e))
        self._level_tail.clear()
        # last value of each difference order 0..d-1 (level, first diff, ...)
        series = values
        for _ in range(self.d):
            self._level_tail.append(float(series[-1]))
            series = np.diff(series)

    # -- prediction ------------------------------------------------------------

    def _require_fit(self) -> None:
        if not self._fitted:
            raise RuntimeError("model not fitted")

    def _one_step_centred(self) -> float:
        """Prediction of the next centred differenced value."""
        w = list(self._recent_w)[::-1]   # most recent first
        eps = list(self._recent_eps)[::-1]
        prediction = 0.0
        for i in range(min(self.p, len(w))):
            prediction += self._phi[i] * w[i]
        for j in range(min(self.q, len(eps))):
            prediction += self._theta[j] * eps[j]
        return prediction

    def predict_next(self) -> float:
        """One-step-ahead prediction in original (level) units."""
        self._require_fit()
        w_next = self._one_step_centred() + self._mu
        if self.d == 0:
            return float(w_next)
        # integrate: new level = last level + ... + predicted difference
        tails = list(self._level_tail)
        prediction = w_next
        for level in range(self.d - 1, -1, -1):
            prediction = tails[level] + prediction
        return float(prediction)

    def observe(self, value: float) -> None:
        """Advance streaming state with the realised level value."""
        self._require_fit()
        value = float(value)
        # convert the level into the d-times differenced domain
        tails = list(self._level_tail)
        diffs: list[float] = []
        current = value
        for level in range(self.d):
            diff = current - tails[level]
            diffs.append(current)
            current = diff
        w_actual = current - self._mu
        innovation = w_actual - self._one_step_centred()
        self._recent_w.append(w_actual)
        self._recent_eps.append(innovation)
        if self.d:
            # update level tails: new level, new first difference, ...
            new_tails: list[float] = []
            running = value
            for level in range(self.d):
                new_tails.append(running)
                running = running - tails[level]
            self._level_tail.clear()
            self._level_tail.extend(new_tails)

    def forecast(self, steps: int) -> Forecast:
        """Multi-step forecast in level units with psi-weight variance."""
        self._require_fit()
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        w_hist = list(self._recent_w)[::-1]
        eps_hist = list(self._recent_eps)[::-1]
        w_forecast = np.empty(steps, dtype=np.float64)
        for step in range(steps):
            prediction = 0.0
            for i in range(self.p):
                if i < len(w_hist):
                    prediction += self._phi[i] * w_hist[i]
            for j in range(self.q):
                if j < len(eps_hist):
                    prediction += self._theta[j] * eps_hist[j]
            w_forecast[step] = prediction
            w_hist.insert(0, prediction)
            eps_hist.insert(0, 0.0)  # future innovations have zero mean
        w_forecast = w_forecast + self._mu
        tails = np.asarray(list(self._level_tail), dtype=np.float64)
        mean = undifference(w_forecast, tails, self.d)

        psi = self._psi_weights(steps)
        if self.d == 0:
            cumulative = np.cumsum(psi**2)
        else:
            # integrated psi weights: cumulative sums per differencing round
            integrated = psi.copy()
            for _ in range(self.d):
                integrated = np.cumsum(integrated)
            cumulative = np.cumsum(integrated**2)
        std = self._sigma * np.sqrt(cumulative)
        return Forecast(mean=mean, std=std)

    def _psi_weights(self, count: int) -> np.ndarray:
        """psi_0..psi_{count-1} of the ARMA part."""
        psi = np.zeros(count, dtype=np.float64)
        psi[0] = 1.0
        for j in range(1, count):
            value = self._theta[j - 1] if j - 1 < self.q else 0.0
            for i in range(1, min(j, self.p) + 1):
                value += self._phi[i - 1] * psi[j - i]
            psi[j] = value
        return psi

    # -- metadata ---------------------------------------------------------------

    def spec(self) -> ModelSpec:
        """Describe the model ("arima(p,d,q)")."""
        return ModelSpec(
            family="arima",
            order=(self.p, self.d, self.q),
            n_params=self.p + self.q + 2,
        )

    @property
    def parameter_bytes(self) -> int:
        """phi + theta + mu + sigma at 4 bytes each, plus 3 meta bytes."""
        return 4 * (self.p + self.q + 2) + 3

    @property
    def residual_std(self) -> float:
        """Innovation standard deviation (differenced domain)."""
        return self._sigma

    @property
    def check_cycles(self) -> float:
        """(p + q) multiply-accumulates + differencing + compare."""
        return 20.0 * (self.p + self.q) + 10.0 * self.d + 20.0
