"""Seasonal (time-of-day) profile model.

The paper's canonical example: "a model of temperature variations will
capture time-of-day effects ... only deviations from the normal temperature
for each hour of the day are reported."  The model is a table of per-bin
means over the daily cycle plus an optional linear drift term; a sensor
verifies a reading with one table lookup and one subtraction — the cheapest
possible model check, and the natural baseline for model-driven push.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.base import (
    Forecast,
    ModelSpec,
    TimeSeriesModel,
    as_float_array,
)

SECONDS_PER_DAY = 86_400.0


class SeasonalProfileModel(TimeSeriesModel):
    """Daily-profile model: per-bin means + linear trend + residual noise.

    Parameters
    ----------
    bins:
        Number of equal slots the day is divided into (48 = half-hourly).
    sample_period_s:
        Sampling interval of the series being modelled.
    fit_trend:
        Whether to remove/forecast a linear drift across days (captures the
        paper's "impact of seasons" over long windows).
    """

    def __init__(
        self, bins: int = 48, sample_period_s: float = 30.0, fit_trend: bool = True
    ) -> None:
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.bins = int(bins)
        self.sample_period_s = float(sample_period_s)
        self.fit_trend = bool(fit_trend)
        self._profile: np.ndarray | None = None
        self._trend_per_s: float = 0.0
        self._intercept: float = 0.0
        self._residual_std: float = 0.0
        self._train_end_time: float = 0.0
        self._clock: float = 0.0

    # -- fitting -----------------------------------------------------------

    def fit(
        self, values: np.ndarray, timestamps: np.ndarray | None = None
    ) -> "SeasonalProfileModel":
        """Fit bin means (and optional trend) to a timestamped window.

        Without explicit *timestamps*, samples are assumed evenly spaced at
        ``sample_period_s`` starting from t=0.
        """
        values = as_float_array(values)
        if timestamps is None:
            timestamps = np.arange(values.size, dtype=np.float64) * self.sample_period_s
        else:
            timestamps = as_float_array(timestamps, "timestamps")
            if timestamps.shape != values.shape:
                raise ValueError("timestamps and values must align")
        slope, intercept = self._fit_trend(values, timestamps)
        self._trend_per_s = slope
        self._intercept = intercept
        detrended = values - (slope * timestamps + intercept)

        bin_index = self._bin_of(timestamps)
        profile = np.zeros(self.bins, dtype=np.float64)
        counts = np.zeros(self.bins, dtype=np.int64)
        np.add.at(profile, bin_index, detrended)
        np.add.at(counts, bin_index, 1)
        filled = counts > 0
        profile[filled] /= counts[filled]
        if not np.all(filled):
            # Empty bins inherit the global mean so predictions stay finite.
            profile[~filled] = float(np.mean(detrended))
        self._profile = profile

        predictions = self._predict_at(timestamps)
        residuals = values - predictions
        self._residual_std = float(np.std(residuals))
        self._train_end_time = float(timestamps[-1])
        self._clock = self._train_end_time
        return self

    def _fit_trend(
        self, values: np.ndarray, timestamps: np.ndarray
    ) -> tuple[float, float]:
        """Inter-day drift estimate.

        Fitting a raw regression line through less than two full cycles
        aliases the daily shape into a bogus slope (a one-day window of any
        asymmetric profile has nonzero OLS slope), so the trend is fitted on
        *daily means* and only when at least two sufficiently covered days
        exist; otherwise the model is flat at the window mean.
        """
        if not self.fit_trend or values.size < 2:
            return 0.0, float(np.mean(values))
        day_index = np.floor_divide(timestamps, SECONDS_PER_DAY).astype(np.int64)
        expected_per_day = max(SECONDS_PER_DAY / self.sample_period_s, 1.0)
        day_times: list[float] = []
        day_means: list[float] = []
        for day in np.unique(day_index):
            mask = day_index == day
            if mask.sum() >= 0.75 * expected_per_day:
                day_times.append(float(np.mean(timestamps[mask])))
                day_means.append(float(np.mean(values[mask])))
        if len(day_means) < 2:
            return 0.0, float(np.mean(values))
        slope, intercept = np.polyfit(day_times, day_means, deg=1)
        return float(slope), float(intercept)

    def _bin_of(self, timestamps: np.ndarray) -> np.ndarray:
        seconds_into_day = np.mod(timestamps, SECONDS_PER_DAY)
        index = (seconds_into_day / SECONDS_PER_DAY * self.bins).astype(np.int64)
        return np.clip(index, 0, self.bins - 1)

    def _predict_at(self, timestamps: np.ndarray) -> np.ndarray:
        if self._profile is None:
            raise RuntimeError("model not fitted")
        trend = self._trend_per_s * timestamps + self._intercept
        return trend + self._profile[self._bin_of(timestamps)]

    # -- prediction --------------------------------------------------------

    def predict_at(self, timestamp: float) -> float:
        """Prediction at an arbitrary absolute time (proxy extrapolation)."""
        return float(self._predict_at(np.asarray([timestamp], dtype=np.float64))[0])

    def forecast(self, steps: int) -> Forecast:
        """Forecast the *steps* epochs after the training window."""
        if self._profile is None:
            raise RuntimeError("model not fitted")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        times = (
            self._train_end_time
            + (np.arange(steps, dtype=np.float64) + 1.0) * self.sample_period_s
        )
        mean = self._predict_at(times)
        std = np.full(steps, self._residual_std, dtype=np.float64)
        return Forecast(mean=mean, std=std)

    def align_to_time(self, next_sample_time: float) -> None:
        """Set the clock so the next prediction targets *next_sample_time*."""
        self._clock = float(next_sample_time) - self.sample_period_s

    def predict_next(self) -> float:
        """One-step prediction at the model's internal clock."""
        return self.predict_at(self._clock + self.sample_period_s)

    def observe(self, value: float) -> None:
        """Advance the clock; the profile itself is static between refits."""
        self._clock += self.sample_period_s

    # -- metadata ----------------------------------------------------------

    def spec(self) -> ModelSpec:
        """Describe the model ("seasonal(bins)")."""
        return ModelSpec(
            family="seasonal",
            order=(self.bins,),
            n_params=self.bins + (2 if self.fit_trend else 1),
        )

    @property
    def parameter_bytes(self) -> int:
        """Profile table at 2 bytes/bin + trend (4) + intercept (4) + meta."""
        return 2 * self.bins + 4 + 4 + 4

    @property
    def residual_std(self) -> float:
        """In-sample residual standard deviation."""
        return self._residual_std

    @property
    def check_cycles(self) -> float:
        """Table lookup + multiply-add + compare: ~40 cycles."""
        return 40.0
