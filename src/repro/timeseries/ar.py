"""Autoregressive models fitted by Yule–Walker or ordinary least squares.

AR(p) is the workhorse "time-series analysis technique" of Section 3: the
proxy fits the coefficients, ships ``p`` floats to the sensor, and both
sides run the same ``p``-tap inner product per reading — cheap enough to
satisfy the paper's asymmetry requirement.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy.linalg import solve_toeplitz

from repro.timeseries.base import (
    Forecast,
    ModelSpec,
    TimeSeriesModel,
    as_float_array,
)


def autocovariance(values: np.ndarray, max_lag: int) -> np.ndarray:
    """Biased sample autocovariances ``gamma_0 .. gamma_max_lag``."""
    values = as_float_array(values)
    n = values.size
    if max_lag >= n:
        raise ValueError(f"max_lag {max_lag} >= series length {n}")
    centred = values - values.mean()
    gamma = np.empty(max_lag + 1, dtype=np.float64)
    for lag in range(max_lag + 1):
        gamma[lag] = np.dot(centred[: n - lag], centred[lag:]) / n
    return gamma


def fit_ar_yule_walker(values: np.ndarray, order: int) -> tuple[np.ndarray, float]:
    """Solve the Yule–Walker equations for AR(*order*).

    Returns ``(coefficients, innovation_variance)``.  Uses the Levinson-type
    Toeplitz solver from scipy for numerical stability.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    gamma = autocovariance(values, order)
    if gamma[0] <= 0:
        # Constant series: no dynamics to fit.
        return np.zeros(order, dtype=np.float64), 0.0
    coeffs = solve_toeplitz(gamma[:order], gamma[1 : order + 1])
    variance = float(gamma[0] - np.dot(coeffs, gamma[1 : order + 1]))
    return np.asarray(coeffs, dtype=np.float64), max(variance, 0.0)


def fit_ar_ols(values: np.ndarray, order: int) -> tuple[np.ndarray, float, float]:
    """Least-squares AR fit with intercept.

    Returns ``(coefficients, intercept, residual_variance)``.  Preferred
    for short windows where Yule–Walker bias matters.
    """
    values = as_float_array(values)
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if values.size <= order + 1:
        raise ValueError(
            f"need more than {order + 1} samples to fit AR({order}), got {values.size}"
        )
    rows = values.size - order
    design = np.empty((rows, order + 1), dtype=np.float64)
    design[:, 0] = 1.0
    for lag in range(1, order + 1):
        design[:, lag] = values[order - lag : values.size - lag]
    target = values[order:]
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    intercept = float(solution[0])
    coeffs = solution[1:]
    residuals = target - design @ solution
    variance = float(np.mean(residuals**2))
    return np.asarray(coeffs, dtype=np.float64), intercept, variance


class ARModel(TimeSeriesModel):
    """AR(p) model with a mean term.

    ``x_t - mu = sum_i phi_i (x_{t-i} - mu) + eps_t``.

    The one-step loop keeps the last ``p`` observed (or substituted) values
    in a deque — this is exactly the state a PRESTO sensor maintains.
    """

    def __init__(
        self,
        order: int = 2,
        sample_period_s: float = 30.0,
        method: str = "yule-walker",
    ) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if method not in ("yule-walker", "ols"):
            raise ValueError(f"unknown fit method {method!r}")
        self.order = int(order)
        self.sample_period_s = float(sample_period_s)
        self.method = method
        self._phi: np.ndarray | None = None
        self._mu: float = 0.0
        self._sigma: float = 0.0
        self._history: deque[float] = deque(maxlen=order)

    def fit(self, values: np.ndarray, timestamps: np.ndarray | None = None) -> "ARModel":
        """Fit coefficients on *values*; timestamps are ignored (even spacing)."""
        values = as_float_array(values)
        if values.size <= self.order + 1:
            raise ValueError(
                f"need more than {self.order + 1} samples, got {values.size}"
            )
        self._mu = float(values.mean())
        if self.method == "yule-walker":
            phi, variance = fit_ar_yule_walker(values, self.order)
            self._phi = phi
            self._sigma = float(np.sqrt(variance))
        else:
            phi, intercept, variance = fit_ar_ols(values, self.order)
            self._phi = phi
            denom = 1.0 - float(np.sum(phi))
            self._mu = intercept / denom if abs(denom) > 1e-9 else float(values.mean())
            self._sigma = float(np.sqrt(variance))
        self._history = deque(
            (float(v) for v in values[-self.order :]), maxlen=self.order
        )
        return self

    def _require_fit(self) -> np.ndarray:
        if self._phi is None:
            raise RuntimeError("model not fitted")
        return self._phi

    def is_stationary(self) -> bool:
        """True when all characteristic roots lie outside the unit circle."""
        phi = self._require_fit()
        poly = np.concatenate([[1.0], -phi])
        roots = np.roots(poly[::-1])
        if roots.size == 0:
            return True
        return bool(np.all(np.abs(roots) > 1.0 + 1e-9))

    def predict_next(self) -> float:
        """One-step prediction from the rolling history."""
        phi = self._require_fit()
        history = list(self._history)
        if len(history) < self.order:
            return self._mu
        centred = np.asarray(history[::-1], dtype=np.float64) - self._mu
        return float(self._mu + np.dot(phi, centred))

    def observe(self, value: float) -> None:
        """Append the realised (or substituted) value to the history."""
        self._history.append(float(value))

    def forecast(self, steps: int) -> Forecast:
        """Iterated multi-step forecast with cumulative error growth.

        Forecast variance uses the standard psi-weight recursion for AR
        processes: ``var_h = sigma^2 * sum_{j<h} psi_j^2``.
        """
        phi = self._require_fit()
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        history = list(self._history)[::-1]  # most recent first
        centred = [h - self._mu for h in history]
        mean = np.empty(steps, dtype=np.float64)
        for step in range(steps):
            lagged = np.asarray(centred[: self.order][: self.order], dtype=np.float64)
            if lagged.size < self.order:
                lagged = np.concatenate(
                    [lagged, np.zeros(self.order - lagged.size)]
                )
            prediction = float(np.dot(phi, lagged))
            mean[step] = self._mu + prediction
            centred.insert(0, prediction)
        psi = self._psi_weights(steps)
        cumulative = np.cumsum(psi**2)
        std = self._sigma * np.sqrt(cumulative)
        return Forecast(mean=mean, std=std)

    def _psi_weights(self, count: int) -> np.ndarray:
        """MA(inf) weights psi_0..psi_{count-1} from the AR recursion."""
        phi = self._require_fit()
        psi = np.zeros(count, dtype=np.float64)
        psi[0] = 1.0
        for j in range(1, count):
            upto = min(j, self.order)
            psi[j] = float(np.dot(phi[:upto], psi[j - 1 :: -1][:upto]))
        return psi

    def spec(self) -> ModelSpec:
        """Describe the model ("ar(p)")."""
        return ModelSpec(family="ar", order=(self.order,), n_params=self.order + 2)

    @property
    def parameter_bytes(self) -> int:
        """p coefficients + mean + sigma at 4 bytes each, plus 2 meta bytes."""
        return 4 * (self.order + 2) + 2

    @property
    def residual_std(self) -> float:
        """Innovation standard deviation."""
        return self._sigma

    @property
    def check_cycles(self) -> float:
        """p multiply-accumulates + compare; ~20 cycles per tap."""
        return 20.0 * self.order + 20.0
