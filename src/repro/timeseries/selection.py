"""Model selection for the prediction engine.

The proxy periodically refits candidate model families on the freshest
window and keeps the one with the best information criterion.  AIC is the
default: push efficiency depends on one-step predictive accuracy, and extra
parameters cost real bytes when shipped to sensors (``parameter_bytes``
breaks ties).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.timeseries.base import TimeSeriesModel, as_float_array


def aic(log_likelihood: float, n_params: int) -> float:
    """Akaike information criterion (lower is better)."""
    return 2.0 * n_params - 2.0 * log_likelihood


def bic(log_likelihood: float, n_params: int, n_samples: int) -> float:
    """Bayesian information criterion (lower is better)."""
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    return n_params * math.log(n_samples) - 2.0 * log_likelihood


def one_step_residuals(model: TimeSeriesModel, values: np.ndarray) -> np.ndarray:
    """Replay *values* through the model's one-step loop, collecting errors.

    This measures exactly the quantity that drives push traffic: the
    prediction error at each sampling epoch.
    """
    values = as_float_array(values)
    residuals = np.empty(values.size, dtype=np.float64)
    for i, value in enumerate(values):
        residuals[i] = value - model.predict_next()
        model.observe(value)
    return residuals


def gaussian_ll_from_residuals(residuals: np.ndarray) -> float:
    """Gaussian log-likelihood at the residuals' MLE variance."""
    residuals = np.asarray(residuals, dtype=np.float64)
    n = residuals.size
    variance = max(float(np.mean(residuals**2)), 1e-12)
    return -0.5 * n * (math.log(2.0 * math.pi * variance) + 1.0)


def select_best_model(
    train: np.ndarray,
    validation: np.ndarray,
    factories: Sequence[Callable[[], TimeSeriesModel]],
    criterion: str = "aic",
) -> tuple[TimeSeriesModel, dict[str, float]]:
    """Fit every candidate on *train*, score on *validation*, keep the best.

    Returns ``(winning_model_refit, scores_by_spec)``.  The winner is refit
    on the concatenated data so its streaming state ends at the last sample.
    Candidates that fail to fit (e.g. window too short for their order) are
    skipped; if all fail, :class:`ValueError` is raised.
    """
    if criterion not in ("aic", "bic"):
        raise ValueError(f"unknown criterion {criterion!r}")
    train = as_float_array(train, "train")
    validation = as_float_array(validation, "validation")
    scores: dict[str, float] = {}
    best_score = math.inf
    best_factory: Callable[[], TimeSeriesModel] | None = None
    for factory in factories:
        try:
            model = factory().fit(train)
            residuals = one_step_residuals(model, validation)
        except (ValueError, RuntimeError, np.linalg.LinAlgError):
            continue
        ll = gaussian_ll_from_residuals(residuals)
        n_params = model.spec().n_params
        if criterion == "aic":
            score = aic(ll, n_params)
        else:
            score = bic(ll, n_params, validation.size)
        scores[str(model.spec())] = score
        if score < best_score:
            best_score = score
            best_factory = factory
    if best_factory is None:
        raise ValueError("no candidate model could be fitted on the window")
    full = np.concatenate([train, validation])
    winner = best_factory().fit(full)
    return winner, scores
