"""Seasonal-differenced ARIMA — the PRESTO successor's production model.

The NSDI'06 follow-up to this paper settled on a seasonal ARIMA of the form

    X(t) = X(t-1) + X(t-S) - X(t-S-1) + corrections

i.e. ARIMA(0,1,1)x(0,1,1)_S: today's change is predicted to repeat
yesterday's change at the same time of day, with two moving-average terms
absorbing transients.  The model is ideal for model-driven push because the
sensor-side check is four lookups and two MACs, yet it captures *both* the
diurnal cycle and weather fronts — the two failure modes that break plain
seasonal profiles and plain ARs respectively.

Estimation: the doubly differenced series
``w(t) = (1-B)(1-B^S) X(t)`` is computed, and the two MA coefficients are
fitted by the innovations-style regression used in
:mod:`repro.timeseries.arima` (long-AR residual proxies, then OLS).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.timeseries.base import (
    Forecast,
    ModelSpec,
    TimeSeriesModel,
    as_float_array,
)


class SeasonalArimaModel(TimeSeriesModel):
    """ARIMA(0,1,q)x(0,1,Q)_S with q = Q = 1 by default.

    Parameters
    ----------
    season_length:
        Samples per season (2785 ≈ one day at 31 s epochs).  For training
        windows shorter than ~2 seasons, fitting fails and the caller
        should fall back to a non-seasonal model.
    """

    def __init__(
        self,
        season_length: int = 2_785,
        q: int = 1,
        seasonal_q: int = 1,
        sample_period_s: float = 31.0,
    ) -> None:
        if season_length < 2:
            raise ValueError(f"season length must be >= 2, got {season_length}")
        if q < 0 or seasonal_q < 0:
            raise ValueError("MA orders must be >= 0")
        self.season_length = int(season_length)
        self.q = int(q)
        self.seasonal_q = int(seasonal_q)
        self.sample_period_s = float(sample_period_s)
        self._theta = np.zeros(self.q)
        self._seasonal_theta = np.zeros(self.seasonal_q)
        self._sigma = 0.0
        self._fitted = False
        # streaming state: the last S+1 level values and recent innovations
        self._levels: deque[float] = deque(maxlen=self.season_length + 1)
        self._eps: deque[float] = deque(
            maxlen=max(self.q, self.seasonal_q * self.season_length, 1)
        )

    # -- estimation -----------------------------------------------------------

    def fit(
        self, values: np.ndarray, timestamps: np.ndarray | None = None
    ) -> "SeasonalArimaModel":
        """Fit MA terms on the doubly differenced window."""
        values = as_float_array(values)
        s = self.season_length
        if values.size < 2 * s + 16:
            raise ValueError(
                f"need >= {2 * s + 16} samples (two seasons), got {values.size}"
            )
        # w(t) = x(t) - x(t-1) - x(t-S) + x(t-S-1)
        x = values
        w = x[s + 1:] - x[s : -1] - x[1 : -s] + x[: -s - 1]

        if self.q == 0 and self.seasonal_q == 0:
            eps = w.copy()
        else:
            eps = self._fit_ma(w)
        self._sigma = float(np.sqrt(np.mean(eps**2)))
        self._fitted = True

        self._levels.clear()
        for value in values[-(s + 1):]:
            self._levels.append(float(value))
        self._eps.clear()
        needed = self._eps.maxlen or 1
        for e in eps[-needed:]:
            self._eps.append(float(e))
        return self

    def _fit_ma(self, w: np.ndarray) -> np.ndarray:
        """Hannan–Rissanen-style MA estimation on the differenced series."""
        s = self.season_length
        long_order = min(max(16, s // 64), w.size // 4)
        rows = w.size - long_order
        design = np.empty((rows, long_order))
        for lag in range(1, long_order + 1):
            design[:, lag - 1] = w[long_order - lag : w.size - lag]
        coeffs, *_ = np.linalg.lstsq(design, w[long_order:], rcond=None)
        eps_hat = np.zeros_like(w)
        eps_hat[long_order:] = w[long_order:] - design @ coeffs

        # regress w on lagged innovation proxies (non-seasonal + seasonal)
        start = max(self.q, self.seasonal_q * s, long_order)
        if start >= w.size - 8:
            # window too short for the seasonal MA term: keep zero thetas
            return eps_hat
        columns = []
        for lag in range(1, self.q + 1):
            columns.append(eps_hat[start - lag : w.size - lag])
        for lag in range(1, self.seasonal_q + 1):
            columns.append(eps_hat[start - lag * s : w.size - lag * s])
        design2 = np.stack(columns, axis=1)
        target = w[start:]
        solution, *_ = np.linalg.lstsq(design2, target, rcond=None)
        self._theta = np.asarray(solution[: self.q])
        self._seasonal_theta = np.asarray(solution[self.q :])
        residual = target - design2 @ solution
        eps = np.zeros_like(w)
        eps[start:] = residual
        return eps

    # -- streaming ---------------------------------------------------------------

    def _require_fit(self) -> None:
        if not self._fitted:
            raise RuntimeError("model not fitted")

    def predict_next(self) -> float:
        """X̂(t) = X(t-1) + X(t-S) - X(t-S-1) + MA corrections."""
        self._require_fit()
        levels = self._levels
        if len(levels) < self.season_length + 1:
            return levels[-1] if levels else 0.0
        x_prev = levels[-1]
        x_season = levels[1]        # x(t-S)
        x_season_prev = levels[0]   # x(t-S-1)
        prediction = x_prev + x_season - x_season_prev
        eps = list(self._eps)[::-1]  # most recent first
        for lag in range(1, self.q + 1):
            if lag - 1 < len(eps):
                prediction += self._theta[lag - 1] * eps[lag - 1]
        for lag in range(1, self.seasonal_q + 1):
            index = lag * self.season_length - 1
            if index < len(eps):
                prediction += self._seasonal_theta[lag - 1] * eps[index]
        return float(prediction)

    def observe(self, value: float) -> None:
        """Record the realised (or substituted) level."""
        self._require_fit()
        innovation = float(value) - self.predict_next()
        self._levels.append(float(value))
        self._eps.append(innovation)

    def forecast(self, steps: int) -> Forecast:
        """Iterated forecast; variance via the integrated random-walk bound."""
        self._require_fit()
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        saved_levels = list(self._levels)
        saved_eps = list(self._eps)
        mean = np.empty(steps)
        for step in range(steps):
            prediction = self.predict_next()
            mean[step] = prediction
            self._levels.append(prediction)
            self._eps.append(0.0)
        # restore streaming state
        self._levels.clear()
        self._levels.extend(saved_levels)
        self._eps.clear()
        self._eps.extend(saved_eps)
        std = self._sigma * np.sqrt(np.cumsum(np.ones(steps)))
        return Forecast(mean=mean, std=std)

    # -- metadata -----------------------------------------------------------------

    def spec(self) -> ModelSpec:
        """Describe the model ("sarima(q,Q,S)")."""
        return ModelSpec(
            family="sarima",
            order=(self.q, self.seasonal_q, self.season_length),
            n_params=self.q + self.seasonal_q + 1,
        )

    @property
    def parameter_bytes(self) -> int:
        """thetas + sigma + season length, 4 bytes each + meta."""
        return 4 * (self.q + self.seasonal_q + 2) + 3

    @property
    def residual_std(self) -> float:
        """Innovation standard deviation."""
        return self._sigma

    @property
    def check_cycles(self) -> float:
        """Four table lookups + (q + Q) MACs + compare."""
        return 30.0 + 20.0 * (self.q + self.seasonal_q)
