"""Batched-admission query front-end with memoization and FIFO backends.

This models the production serving path over a federation: user queries
arrive continuously, are admitted in fixed batches (the admission tick is
the first latency component), deduplicated against a TTL'd answer memo
(overlapping windows quantize onto the same key), and surviving misses are
dispatched to the owning cell's simulation partition — each partition is
one FIFO backend whose queueing follows the Lindley recursion: a batch's
misses start at ``max(admission time, backend frontier)`` and each takes
one service time, so offered load past a partition's capacity grows the
frontier without bound and the p99 latency turns the saturation knee the
benchmarks chart.

Backend response cost is piecewise-constant per fault-timeline segment
(:class:`BackendSegments`), precomputed by the federation from its static
routing facts — ownership hops, proxy response latencies and replica
placement — so the front-end model is identical whichever partition
backend executed the cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.config import ServingConfig, ServingReport
from repro.serving.traffic import generate_traffic

#: memo-key packing offsets: key = sensor * _KEY_STRIDE + (bucket + _BUCKET_BIAS) * 2 + kind
_BUCKET_BIAS = 1 << 20
_KEY_STRIDE = 1 << 24

#: prune expired memo entries every this many admission batches
_PRUNE_EVERY = 256


@dataclass(frozen=True)
class BackendSegments:
    """Piecewise-constant backend cost per sensor across the fault timeline.

    ``starts[i]`` opens segment ``i``; ``latencies[i, sensor]`` is the
    response latency a miss pays there, and ``served[i, sensor]`` is False
    when no live proxy (owner or replica host) can serve the sensor.
    """

    starts: np.ndarray             # (n_segments,) ascending, starts[0] == 0
    latencies: np.ndarray          # (n_segments, n_sensors) float64
    served: np.ndarray             # (n_segments, n_sensors) bool

    def segment_at(self, at_s: float) -> int:
        """Index of the segment covering virtual time *at_s*."""
        return int(np.searchsorted(self.starts, at_s, side="right") - 1)


class ServingFrontend:
    """Admit, memoize and dispatch one serving window of traffic."""

    def __init__(
        self,
        config: ServingConfig,
        n_sensors: int,
        n_partitions: int,
        partition_of_sensor: np.ndarray,
        segments: BackendSegments,
        rng: np.random.Generator,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        if partition_of_sensor.shape != (n_sensors,):
            raise ValueError("partition map must cover every sensor")
        self.config = config
        self.n_sensors = int(n_sensors)
        self.n_partitions = int(n_partitions)
        self.partition_of_sensor = partition_of_sensor
        self.segments = segments
        self.rng = rng

    def run(self, horizon: float) -> ServingReport:
        """Generate the window's traffic and push it through the front-end."""
        config = self.config
        traffic = generate_traffic(config, horizon, self.n_sensors, self.rng)
        n = len(traffic)
        if n == 0:
            return self._empty_report(traffic)
        interval = config.admission_interval_s
        quant = config.window_quant_s
        # Memo keys: value queries bucket on arrival, window queries on the
        # quantized window start — overlapping windows collapse to one key.
        bucket = np.where(
            traffic.is_now,
            np.floor(traffic.arrival / quant),
            np.floor((traffic.arrival - config.window_s) / quant),
        ).astype(np.int64)
        keys = (
            traffic.sensor * _KEY_STRIDE
            + (bucket + _BUCKET_BIAS) * 2
            + traffic.is_now.astype(np.int64)
        )
        batch = np.floor((traffic.arrival - traffic.t0) / interval).astype(np.int64)

        latencies = np.empty(n, dtype=np.float64)
        unserved_mask = np.zeros(n, dtype=bool)
        frontier = np.zeros(self.n_partitions, dtype=np.float64)
        memo: dict[int, float] = {}
        backend_requests = 0
        busy_s = 0.0
        service = config.service_time_s

        batch_bounds = np.searchsorted(batch, np.arange(batch[-1] + 2))
        for b in range(int(batch[-1]) + 1):
            lo, hi = int(batch_bounds[b]), int(batch_bounds[b + 1])
            if lo == hi:
                continue
            admit_at = traffic.t0 + (b + 1) * interval
            slice_keys = keys[lo:hi]
            unique_keys, first, inverse = np.unique(
                slice_keys, return_index=True, return_inverse=True
            )
            completion = np.empty(unique_keys.size, dtype=np.float64)
            hit = np.array(
                [memo.get(int(key), -np.inf) >= admit_at for key in unique_keys]
            )
            completion[hit] = admit_at + config.memo_hit_latency_s
            # Misses go to their owner partition's FIFO backend, in arrival
            # order (Lindley recursion over the batch).
            miss_positions = np.flatnonzero(~hit)
            miss_positions = miss_positions[np.argsort(first[miss_positions])]
            miss_served = np.ones(miss_positions.size, dtype=bool)
            if miss_positions.size:
                seg = self.segments.segment_at(admit_at)
                miss_sensors = traffic.sensor[lo:hi][first[miss_positions]]
                parts = self.partition_of_sensor[miss_sensors]
                backend = self.segments.latencies[seg][miss_sensors]
                miss_served = self.segments.served[seg][miss_sensors]
                done = np.empty(miss_positions.size, dtype=np.float64)
                for p in np.unique(parts):
                    members = np.flatnonzero(parts == p)
                    start = max(admit_at, frontier[p])
                    done[members] = start + (np.arange(members.size) + 1) * service
                    frontier[p] = start + members.size * service
                    busy_s += members.size * service
                completion[miss_positions] = done + np.where(miss_served, backend, 0.0)
                backend_requests += int(miss_positions.size)
                for key, served in zip(unique_keys[miss_positions], miss_served):
                    if served:
                        memo[int(key)] = admit_at + config.memo_ttl_s
            served_unique = np.ones(unique_keys.size, dtype=bool)
            served_unique[miss_positions] = miss_served
            latencies[lo:hi] = completion[inverse] - traffic.arrival[lo:hi]
            unserved_mask[lo:hi] = ~served_unique[inverse]
            if b % _PRUNE_EVERY == _PRUNE_EVERY - 1 and memo:
                memo = {
                    key: expiry for key, expiry in memo.items() if expiry >= admit_at
                }

        unserved = int(unserved_mask.sum())
        # Latency statistics cover *served* queries only: an unserved query's
        # completion stops at the queue (no backend answer ever arrives), and
        # folding those queue-only times into the percentiles deflates the
        # distribution exactly where it matters, past the saturation knee.
        served_latencies = latencies[~unserved_mask]
        if served_latencies.size:
            p50, p95, p99 = np.percentile(served_latencies, [50.0, 95.0, 99.0])
            mean_latency = float(served_latencies.mean())
        else:
            p50 = p95 = p99 = mean_latency = float("nan")
        return ServingReport(
            offered_qps=config.offered_qps,
            achieved_qps=(n - unserved) / traffic.duration_s,
            n_queries=n,
            distinct_users=traffic.distinct_users,
            memo_hit_rate=1.0 - backend_requests / n,
            p50_latency_s=float(p50),
            p95_latency_s=float(p95),
            p99_latency_s=float(p99),
            mean_latency_s=mean_latency,
            utilization=busy_s / (self.n_partitions * traffic.duration_s),
            unserved=unserved,
            n_partitions=self.n_partitions,
            zipf_s=config.zipf_s,
            memo_ttl_s=config.memo_ttl_s,
        )

    def _empty_report(self, traffic) -> ServingReport:
        nan = float("nan")
        return ServingReport(
            offered_qps=self.config.offered_qps,
            achieved_qps=0.0,
            n_queries=0,
            distinct_users=0,
            memo_hit_rate=nan,
            p50_latency_s=nan,
            p95_latency_s=nan,
            p99_latency_s=nan,
            mean_latency_s=nan,
            utilization=0.0,
            unserved=0,
            n_partitions=self.n_partitions,
            zipf_s=self.config.zipf_s,
            memo_ttl_s=self.config.memo_ttl_s,
        )
