"""Zipf-skewed query traffic from a large simulated user population.

The generator is fully vectorized — a campaign sweep point may draw a
million arrivals, so per-query python loops are off the table.  Sensor
popularity follows a Zipf law over rank (the same family the query
workload generator uses), user identity follows a power-law transform of a
uniform draw (cheap, and only the distinct-user count is reported), and
arrival times are an order-statistics Poisson draw: ``N ~ Poisson(qps *
window)`` uniforms, sorted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.config import ServingConfig


@dataclass
class Traffic:
    """One serving window's arrivals, sorted by time."""

    t0: float                      # serving window start (absolute sim time)
    duration_s: float
    arrival: np.ndarray            # float64, ascending, absolute sim time
    sensor: np.ndarray             # int64 global sensor ids
    is_now: np.ndarray             # bool: value query (vs window query)
    user: np.ndarray               # int64 user ids

    def __len__(self) -> int:
        return int(self.arrival.size)

    @property
    def distinct_users(self) -> int:
        """How many distinct users the window's traffic came from."""
        if self.user.size == 0:
            return 0
        return int(np.unique(self.user).size)


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity over ``n`` ranks with exponent ``s``."""
    if n < 1:
        raise ValueError("need at least one sensor")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -float(s)
    return weights / weights.sum()


def generate_traffic(
    config: ServingConfig,
    horizon: float,
    n_sensors: int,
    rng: np.random.Generator,
) -> Traffic:
    """Draw one serving window of traffic against an ``n_sensors`` deployment.

    The window is centred in the run (clamped to it) so the backend serves
    traffic against warmed caches and models rather than the cold start.
    """
    duration = float(min(config.duration_s, horizon))
    t0 = max(0.0, 0.5 * (horizon - duration))
    count = int(rng.poisson(config.offered_qps * duration))
    arrival = np.sort(rng.random(count)) * duration + t0
    sensor = rng.choice(
        n_sensors, size=count, p=zipf_weights(n_sensors, config.zipf_s)
    ).astype(np.int64)
    is_now = rng.random(count) < config.now_fraction
    # Power-law transform of a uniform: a small core of heavy users plus a
    # long tail, out of a population of n_users.
    user = np.minimum(
        (rng.random(count) ** 1.5 * config.n_users).astype(np.int64),
        config.n_users - 1,
    )
    return Traffic(
        t0=t0,
        duration_s=duration,
        arrival=arrival,
        sensor=sensor,
        is_now=is_now,
        user=user,
    )
