"""Query-serving front-end: Zipf traffic, batched admission, memoization,
latency percentiles over a partitioned federation."""

from repro.serving.config import ServingConfig, ServingReport
from repro.serving.frontend import BackendSegments, ServingFrontend
from repro.serving.traffic import Traffic, generate_traffic, zipf_weights

__all__ = [
    "BackendSegments",
    "ServingConfig",
    "ServingFrontend",
    "ServingReport",
    "Traffic",
    "generate_traffic",
    "zipf_weights",
]
