"""Configuration and report types for the query-serving front-end tier."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the production-traffic front-end layered over a federation.

    The front-end draws ``offered_qps`` queries per second from
    ``n_users`` simulated users over a serving window placed mid-run,
    skews sensor popularity by a Zipf law with exponent ``zipf_s``, admits
    traffic in ``admission_interval_s`` batches against the federated
    directory, and memoizes answers for ``memo_ttl_s`` so overlapping
    windows (quantized to ``window_quant_s``) are served from the
    front-end instead of the backend.  ``offered_qps``, ``zipf_s``,
    ``memo_ttl_s`` and the federation's partition count are sweepable
    scenario parameters — the offered-load-vs-p99 grid charts the
    saturation knee.
    """

    offered_qps: float = 200.0
    zipf_s: float = 0.9
    n_users: int = 2_000_000
    memo_ttl_s: float = 30.0
    admission_interval_s: float = 0.25
    service_time_s: float = 0.004        # backend CPU per admitted miss
    memo_hit_latency_s: float = 0.0005   # front-end lookup on a memo hit
    now_fraction: float = 0.6            # value queries; rest are windows
    window_s: float = 3_600.0            # span of a window query
    window_quant_s: float = 60.0         # memo key quantization
    duration_s: float = 600.0            # serving window length (mid-run)

    def __post_init__(self) -> None:
        if self.offered_qps <= 0:
            raise ValueError("offered qps must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf exponent must be >= 0")
        if self.n_users < 1:
            raise ValueError("need at least one user")
        if self.memo_ttl_s < 0:
            raise ValueError("memo ttl must be >= 0")
        if self.admission_interval_s <= 0:
            raise ValueError("admission interval must be positive")
        if self.service_time_s <= 0:
            raise ValueError("service time must be positive")
        if self.memo_hit_latency_s < 0:
            raise ValueError("memo hit latency must be >= 0")
        if not 0.0 <= self.now_fraction <= 1.0:
            raise ValueError("now fraction must be in [0, 1]")
        if self.window_s <= 0 or self.window_quant_s <= 0:
            raise ValueError("window spans must be positive")
        if self.duration_s <= 0:
            raise ValueError("serving window must be positive")


@dataclass
class ServingReport:
    """What the front-end measured over its serving window."""

    offered_qps: float
    achieved_qps: float                  # served (non-failed) completions / window
    n_queries: int
    distinct_users: int
    memo_hit_rate: float                 # fraction answered from the memo
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    utilization: float                   # backend busy time / capacity
    unserved: int                        # no live server for the sensor
    n_partitions: int
    zipf_s: float
    memo_ttl_s: float

    def summary(self) -> dict[str, float]:
        """Flat dict of the serving metrics (keys prefixed ``serving_``)."""
        return {
            "serving_offered_qps": float(self.offered_qps),
            "serving_achieved_qps": float(self.achieved_qps),
            "serving_queries": float(self.n_queries),
            "serving_distinct_users": float(self.distinct_users),
            "serving_memo_hit_rate": float(self.memo_hit_rate),
            "serving_p50_s": float(self.p50_latency_s),
            "serving_p95_s": float(self.p95_latency_s),
            "serving_p99_s": float(self.p99_latency_s),
            "serving_utilization": float(self.utilization),
            "serving_unserved": float(self.unserved),
        }
