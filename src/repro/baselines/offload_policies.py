"""Storage-policy strategies: local aging vs collaborative offload.

A trace-driven comparison in the :mod:`repro.baselines.strategies` mould:
feed one generated trace into a fleet of :class:`SensorArchive`\\ s under
each storage policy and measure what survives.  No proxy, no queries, no
DES — just the archive/flash/offload substrate under pure storage
pressure, so the policies' intrinsic trade-off (radio joules spent moving
segments vs information destroyed by aging and eviction) is visible
without workload noise.  The full-system counterpart is the
``offload_vs_aging`` scenario (:mod:`repro.scenarios.library`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.constants import MICA2_PROFILE, NodeEnergyProfile
from repro.energy.meter import EnergyMeter
from repro.storage.aging import AgingPolicy
from repro.storage.archive import SensorArchive
from repro.storage.flash import FlashDevice
from repro.storage.offload import (
    STORAGE_POLICIES,
    OffloadCoordinator,
    fleet_fidelity,
)
from repro.traces.intel_lab import TraceSet


@dataclass(frozen=True)
class OffloadStrategyResult:
    """One storage policy's outcome on one trace at one flash sizing."""

    policy: str
    flash_capacity_bytes: int
    n_sensors: int
    fidelity_retained: float
    energy_j: float
    segments_offloaded: int
    remote_hosted_segments: int
    aged_segments: int
    evictions: int

    @property
    def fidelity_per_joule_per_flash_byte(self) -> float:
        """The offload-vs-aging headline metric (NaN when degenerate)."""
        denominator = self.energy_j * self.flash_capacity_bytes * self.n_sensors
        if denominator <= 0:
            return float("nan")
        return self.fidelity_retained / denominator


def storage_policy_sweep(
    trace: TraceSet,
    flash_capacity_bytes: int,
    segment_readings: int = 128,
    aging_max_level: int = 4,
    policies: tuple[str, ...] = STORAGE_POLICIES,
    profile: NodeEnergyProfile = MICA2_PROFILE,
) -> list[OffloadStrategyResult]:
    """Run every storage policy over *trace* at one flash sizing.

    Each sensor of the trace gets its own metered flash + archive; under
    the offload policies all archives of the fleet register with one
    coordinator (the trace is one cell).  Readings replay in epoch order —
    exactly the order the DES feeds them — so results are deterministic
    and comparable across policies.
    """
    results: list[OffloadStrategyResult] = []
    for policy in policies:
        meters = [EnergyMeter(f"sensor{i}") for i in range(trace.n_sensors)]
        archives = [
            SensorArchive(
                FlashDevice(
                    profile.flash, meters[i], capacity_bytes=flash_capacity_bytes
                ),
                segment_readings=segment_readings,
                aging_policy=AgingPolicy(max_level=aging_max_level),
                sample_period_s=trace.config.epoch_s,
            )
            for i in range(trace.n_sensors)
        ]
        coordinator = None
        if policy != "local_aging":
            coordinator = OffloadCoordinator(policy=policy, radio=profile.radio)
            for archive in archives:
                coordinator.register(archive)
        for epoch in range(trace.n_epochs):
            timestamp = epoch * trace.config.epoch_s
            for position, archive in enumerate(archives):
                value = trace.values[position, epoch]
                if not np.isnan(value):
                    archive.append(timestamp, float(value))
        fidelity = fleet_fidelity(archives, trace.values, trace.config.epoch_s)
        hosted = sum(
            1
            for archive in archives
            for record in archive.records.values()
            if record.hosted_by is not None
        )
        results.append(
            OffloadStrategyResult(
                policy=policy,
                flash_capacity_bytes=flash_capacity_bytes,
                n_sensors=trace.n_sensors,
                fidelity_retained=fidelity,
                energy_j=sum(meter.total_j for meter in meters),
                segments_offloaded=(
                    coordinator.stats.segments_offloaded if coordinator else 0
                ),
                remote_hosted_segments=hosted,
                aged_segments=sum(
                    count
                    for archive in archives
                    for level, count in archive.resolution_profile().items()
                    if level > 0
                ),
                evictions=sum(
                    archive.aging_policy.evictions for archive in archives
                ),
            )
        )
    return results
