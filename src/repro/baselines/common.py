"""Shared machinery for the Table 1 architecture comparison.

Every baseline runs over the *same* trace, query workload, radio/energy
constants and link model as PRESTO itself, and reports through the same
:class:`BaselineReport` so the comparison benchmark can print one table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.queries import QueryAnswer
from repro.energy.constants import MICA2_PROFILE, NodeEnergyProfile
from repro.energy.duty_cycle import DutyCycleConfig, lpl_average_power
from repro.energy.meter import EnergyMeter
from repro.energy.radio_energy import receive_energy, transfer_energy
from repro.simulation.randomness import seeded_rng
from repro.traces.intel_lab import TraceSet
from repro.traces.workload import Query, QueryKind

#: bytes of one pushed/streamed reading record (value + epoch header)
READING_BYTES = 12
#: bytes of a query/interest message
QUERY_BYTES = 16
#: proxy/server-side processing latency
SERVER_PROCESSING_S = 0.02


@dataclass
class BaselineReport:
    """Comparable outcome of one architecture run (subset of SystemReport)."""

    name: str
    duration_s: float
    n_sensors: int
    answers: list[QueryAnswer]
    truths: list[float | None]
    sensor_energy_j: float
    per_sensor_energy_j: list[float]
    messages: int

    @property
    def mean_latency_s(self) -> float:
        """Mean answer latency over all queries."""
        if not self.answers:
            return 0.0
        return float(np.mean([a.latency_s for a in self.answers]))

    @property
    def answered_fraction(self) -> float:
        """Fraction of queries that produced any value."""
        if not self.answers:
            return 1.0
        return float(np.mean([a.answered for a in self.answers]))

    @property
    def mean_error(self) -> float:
        """Mean absolute error where ground truth is known."""
        errors = [
            abs(a.value - t)
            for a, t in zip(self.answers, self.truths)
            if a.value is not None and t is not None
        ]
        return float(np.mean(errors)) if errors else 0.0

    @property
    def success_rate(self) -> float:
        """Answered within precision and latency bounds."""
        if not self.answers:
            return 1.0
        good = 0
        for answer, truth in zip(self.answers, self.truths):
            if not answer.answered or not answer.met_latency:
                continue
            if truth is not None and answer.value is not None:
                if abs(answer.value - truth) > answer.query.precision:
                    continue
            good += 1
        return good / len(self.answers)

    def success_rate_kind(self, *kinds: QueryKind) -> float:
        """Success restricted to the given query kinds (NOW vs PAST split)."""
        pairs = [
            (a, t)
            for a, t in zip(self.answers, self.truths)
            if a.query.kind in kinds
        ]
        if not pairs:
            return 1.0
        good = 0
        for answer, truth in pairs:
            if not answer.answered or not answer.met_latency:
                continue
            if truth is not None and answer.value is not None:
                if abs(answer.value - truth) > answer.query.precision:
                    continue
            good += 1
        return good / len(pairs)

    @property
    def sensor_energy_per_day_j(self) -> float:
        """Mean sensor energy per node-day."""
        days = self.duration_s / 86_400.0
        if days <= 0 or self.n_sensors == 0:
            return 0.0
        return self.sensor_energy_j / self.n_sensors / days

    def summary(self) -> dict[str, float]:
        """Flat dict for the comparison table."""
        return {
            "sensor_energy_per_day_j": self.sensor_energy_per_day_j,
            "mean_latency_s": self.mean_latency_s,
            "success_rate": self.success_rate,
            "now_success": self.success_rate_kind(QueryKind.NOW),
            "past_success": self.success_rate_kind(
                QueryKind.PAST_POINT, QueryKind.PAST_RANGE, QueryKind.PAST_AGG
            ),
            "mean_error": self.mean_error,
            "answered_fraction": self.answered_fraction,
            "messages": float(self.messages),
        }


class BaselineArchitecture:
    """Base class: trace access, ground truth, and energy helpers."""

    name = "baseline"

    def __init__(
        self,
        trace: TraceSet,
        profile: NodeEnergyProfile = MICA2_PROFILE,
        check_interval_s: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.trace = trace
        self.profile = profile
        self.duty_cycle = DutyCycleConfig(check_interval_s=check_interval_s)
        # explicit deterministic fallback: baseline comparisons replay the
        # same loss/backoff draws when no generator is threaded in
        self.rng = rng if rng is not None else seeded_rng(0)
        self.meters = [EnergyMeter(f"sensor{i}") for i in range(trace.n_sensors)]
        self.messages = 0

    # -- trace helpers ----------------------------------------------------------

    def reading_at(self, sensor: int, timestamp: float) -> float | None:
        """Trace value at the epoch containing *timestamp* (None if dropped)."""
        epoch = self.trace.epoch_of(min(timestamp, self.trace.timestamps[-1]))
        value = self.trace.values[sensor, epoch]
        return None if np.isnan(value) else float(value)

    def truth_for(self, query: Query) -> float | None:
        """Ground truth for success accounting (same rule as PrestoSystem)."""
        if query.kind in (QueryKind.NOW, QueryKind.PAST_POINT):
            target = (
                query.arrival_time
                if query.kind is QueryKind.NOW
                else query.target_time
            )
            return self.reading_at(query.sensor, target)
        start, end = query.target_time, query.target_time + query.window_s
        mask = (self.trace.timestamps >= start) & (self.trace.timestamps <= end)
        window = self.trace.values[query.sensor, mask]
        window = window[~np.isnan(window)]
        if window.size == 0:
            return None
        if query.aggregate == "mean":
            return float(np.mean(window))
        if query.aggregate == "min":
            return float(np.min(window))
        return float(np.max(window))

    # -- energy helpers -----------------------------------------------------------

    def charge_uplink(self, sensor: int, payload_bytes: int, category: str) -> None:
        """Sensor→server transfer (short preamble, server always on)."""
        self.meters[sensor].charge(
            category, transfer_energy(self.profile.radio, payload_bytes)
        )
        self.messages += 1

    def charge_downlink_rx(self, sensor: int, payload_bytes: int) -> None:
        """Sensor-side RX cost of hearing a server message."""
        self.meters[sensor].charge(
            "radio.rx", receive_energy(self.profile.radio, payload_bytes)
        )

    def charge_idle(self, duration_s: float) -> None:
        """LPL idle listening for the whole fleet."""
        power = lpl_average_power(self.profile.radio, self.duty_cycle)
        for meter in self.meters:
            meter.charge("radio.lpl", power * duration_s)

    def downlink_latency_s(self, payload_bytes: int = QUERY_BYTES) -> float:
        """Mean latency to wake + deliver a message to a duty-cycled sensor."""
        airtime = (
            self.duty_cycle.lpl_preamble_bytes(self.profile.radio) + payload_bytes
        ) * self.profile.radio.byte_time_s
        return self.duty_cycle.check_interval_s / 2.0 + airtime

    def uplink_latency_s(self, payload_bytes: int) -> float:
        """Latency of a sensor→server transfer."""
        radio = self.profile.radio
        overhead = radio.preamble_bytes + radio.header_bytes + radio.crc_bytes
        return (overhead + payload_bytes) * radio.byte_time_s

    # -- report -------------------------------------------------------------------

    def build_report(
        self,
        answers: list[QueryAnswer],
        truths: list[float | None],
        duration_s: float,
    ) -> BaselineReport:
        """Assemble the comparable report."""
        return BaselineReport(
            name=self.name,
            duration_s=duration_s,
            n_sensors=self.trace.n_sensors,
            answers=answers,
            truths=truths,
            sensor_energy_j=float(sum(m.total_j for m in self.meters)),
            per_sensor_energy_j=[m.total_j for m in self.meters],
            messages=self.messages,
        )
