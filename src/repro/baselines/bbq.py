"""Model-driven *pull* (TinyDB / BBQ [5, 6]).

Table 1: proxy querying, archival at the proxy, prediction **yes** — but
acquisition is pull-based: the server maintains a multivariate Gaussian over
the sensors and answers queries from the model posterior when its confidence
meets the precision; otherwise it *acquires* the needed reading(s).  Nothing
is pushed, so the proxy only ever sees data it asked for — the exact gap
PRESTO's push protocol fills ("a pure pull-based approach ... will likely
fail to capture [unexpected events]").

The model is refreshed by periodic acquisition rounds (one reading per
sensor per round), mirroring BBQ's epoch observations.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    QUERY_BYTES,
    READING_BYTES,
    SERVER_PROCESSING_S,
    BaselineArchitecture,
    BaselineReport,
)
from repro.core.queries import AnswerSource, QueryAnswer
from repro.timeseries.gaussian import MultivariateGaussianModel
from repro.traces.workload import Query, QueryKind


class BbqArchitecture(BaselineArchitecture):
    """BBQ-style model-driven acquisition on our substrate."""

    name = "tinydb_bbq"

    def __init__(
        self,
        *args,
        observation_interval_s: float = 3600.0,
        training_epochs: int = 512,
        staleness_inflation: float = 1.15,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if observation_interval_s <= 0:
            raise ValueError("observation interval must be positive")
        self.observation_interval_s = float(observation_interval_s)
        self.training_epochs = int(training_epochs)
        self.staleness_inflation = float(staleness_inflation)
        self.model: MultivariateGaussianModel | None = None
        # proxy-side archive: sensor -> sorted [(timestamp, value)]
        self._proxy_archive: dict[int, list[tuple[float, float]]] = {
            s: [] for s in range(self.trace.n_sensors)
        }
        self._last_observation: dict[int, tuple[float, float]] = {}

    # -- acquisition --------------------------------------------------------------

    def _train(self) -> None:
        epochs = min(self.training_epochs, self.trace.n_epochs)
        matrix = self.trace.values[:, :epochs].T
        complete = ~np.isnan(matrix).any(axis=1)
        if complete.sum() >= 8:
            self.model = MultivariateGaussianModel().fit(matrix[complete])

    def _acquire(self, sensor: int, timestamp: float) -> float | None:
        """Pull one reading: sensor pays RX(request) + TX(reading)."""
        value = self.reading_at(sensor, timestamp)
        self.charge_downlink_rx(sensor, QUERY_BYTES)
        if value is None:
            return None
        self.charge_uplink(sensor, READING_BYTES, "radio.acquire")
        self._proxy_archive[sensor].append((timestamp, value))
        self._last_observation[sensor] = (timestamp, value)
        return value

    def _observation_round(self, timestamp: float) -> None:
        for sensor in range(self.trace.n_sensors):
            self._acquire(sensor, timestamp)

    # -- run ---------------------------------------------------------------------

    def run(self, queries: list[Query], duration_s: float) -> BaselineReport:
        """Training pass, periodic observation rounds, then the workload."""
        self._train()
        rounds = np.arange(0.0, duration_s, self.observation_interval_s)
        answers: list[QueryAnswer] = []
        truths: list[float | None] = []
        queue = sorted(queries, key=lambda q: q.arrival_time)
        position = 0
        for i, round_time in enumerate(rounds):
            self._observation_round(float(round_time))
            window_end = (
                rounds[i + 1] if i + 1 < rounds.shape[0] else duration_s
            )
            while position < len(queue) and queue[position].arrival_time < window_end:
                query = queue[position]
                position += 1
                if query.arrival_time >= duration_s:
                    continue
                answers.append(self._answer(query))
                truths.append(self.truth_for(query))
        self.charge_idle(duration_s)
        return self.build_report(answers, truths, duration_s)

    # -- answering -----------------------------------------------------------------

    def _posterior(self, sensor: int, at_time: float) -> tuple[float, float] | None:
        """Conditional (mean, std) given the freshest observations."""
        if self.model is None:
            return None
        observed: dict[int, float] = {}
        for other, (ts, value) in self._last_observation.items():
            if other != sensor and at_time - ts <= self.observation_interval_s:
                observed[other] = value
        mean, std = self.model.estimate(sensor, observed)
        own = self._last_observation.get(sensor)
        if own is not None:
            staleness = max(at_time - own[0], 0.0)
            rounds_stale = staleness / self.observation_interval_s
            # shrink toward the last direct reading, inflating with staleness
            weight = max(1.0 - rounds_stale, 0.0)
            mean = weight * own[1] + (1.0 - weight) * mean
            std = std * (self.staleness_inflation ** min(rounds_stale, 16.0))
        return float(mean), float(std)

    def _answer(self, query: Query) -> QueryAnswer:
        if query.kind is QueryKind.NOW:
            return self._answer_now(query)
        return self._answer_past(query)

    def _answer_now(self, query: Query) -> QueryAnswer:
        sensor = query.sensor
        posterior = self._posterior(sensor, query.arrival_time)
        if posterior is not None and posterior[1] <= query.precision:
            return QueryAnswer(
                query=query,
                value=posterior[0],
                source=AnswerSource.PREDICTION,
                latency_s=SERVER_PROCESSING_S,
                believed_std=posterior[1],
            )
        before = self.meters[sensor].total_j
        value = self._acquire(sensor, query.arrival_time)
        latency = (
            SERVER_PROCESSING_S
            + self.downlink_latency_s(QUERY_BYTES)
            + self.uplink_latency_s(READING_BYTES)
        )
        if value is None:
            return QueryAnswer(
                query=query,
                value=posterior[0] if posterior else None,
                source=AnswerSource.PREDICTION if posterior else AnswerSource.FAILED,
                latency_s=latency,
                believed_std=posterior[1] if posterior else 0.0,
            )
        return QueryAnswer(
            query=query,
            value=value,
            source=AnswerSource.SENSOR_PULL,
            latency_s=latency,
            sensor_energy_j=self.meters[sensor].total_j - before,
            pulled_bytes=READING_BYTES,
        )

    def _answer_past(self, query: Query) -> QueryAnswer:
        """PAST queries: only the proxy-side archive of acquired data exists.

        There is no sensor archive to fall back to, so accuracy is limited
        to whatever the observation rounds happened to capture.
        """
        sensor = query.sensor
        archive = self._proxy_archive[sensor]
        if not archive:
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=SERVER_PROCESSING_S,
            )
        times = np.asarray([t for t, _ in archive])
        values = np.asarray([v for _, v in archive])
        if query.kind is QueryKind.PAST_POINT:
            nearest = int(np.argmin(np.abs(times - query.target_time)))
            return QueryAnswer(
                query=query,
                value=float(values[nearest]),
                source=AnswerSource.CACHE,
                latency_s=SERVER_PROCESSING_S,
                believed_std=0.0,
            )
        start, end = query.target_time, query.target_time + query.window_s
        mask = (times >= start) & (times <= end)
        if not mask.any():
            # no observation round fell inside the window
            nearest = int(np.argmin(np.abs(times - (start + end) / 2.0)))
            return QueryAnswer(
                query=query,
                value=float(values[nearest]),
                source=AnswerSource.CACHE,
                latency_s=SERVER_PROCESSING_S,
            )
        window = values[mask]
        if query.aggregate == "mean":
            value = float(np.mean(window))
        elif query.aggregate == "min":
            value = float(np.min(window))
        else:
            value = float(np.max(window))
        return QueryAnswer(
            query=query,
            value=value,
            source=AnswerSource.CACHE,
            latency_s=SERVER_PROCESSING_S,
        )
