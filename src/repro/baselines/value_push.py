"""Value-driven push as a full architecture.

The sensor-side rule is Figure 2's "Value-Driven Push": transmit whenever
the reading moves more than Δ from the last transmitted value.  As an
architecture it sits between streaming and PRESTO: the proxy's view is a
zero-order hold of the pushed values (error bounded by Δ), there is no
model and no sensor archive, so PAST queries are answered from the push log
with Δ-bounded error — but only for the time range the log covers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.common import (
    READING_BYTES,
    SERVER_PROCESSING_S,
    BaselineArchitecture,
    BaselineReport,
)
from repro.core.queries import AnswerSource, QueryAnswer
from repro.energy.radio_energy import transfer_energy
from repro.traces.workload import Query, QueryKind


class ValuePushArchitecture(BaselineArchitecture):
    """Δ-threshold push with a proxy-side push log."""

    def __init__(self, *args, delta: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.name = f"value_push_d{delta:g}"
        # push log per sensor: (timestamps array, values array) built in run()
        self._log_times: dict[int, np.ndarray] = {}
        self._log_values: dict[int, np.ndarray] = {}

    def run(self, queries: list[Query], duration_s: float) -> BaselineReport:
        """Simulate pushes over the trace, then answer the workload."""
        per_push = transfer_energy(self.profile.radio, READING_BYTES)
        horizon_epochs = int(duration_s // self.trace.config.epoch_s)
        for sensor in range(self.trace.n_sensors):
            series = self.trace.values[sensor, :horizon_epochs]
            times: list[float] = []
            values: list[float] = []
            last: float | None = None
            for epoch, value in enumerate(series):
                if math.isnan(value):
                    continue
                if last is None or abs(value - last) > self.delta:
                    last = float(value)
                    times.append(float(self.trace.timestamps[epoch]))
                    values.append(last)
            self._log_times[sensor] = np.asarray(times)
            self._log_values[sensor] = np.asarray(values)
            self.meters[sensor].charge("radio.push", len(times) * per_push)
            self.messages += len(times)
        self.charge_idle(duration_s)

        answers: list[QueryAnswer] = []
        truths: list[float | None] = []
        for query in queries:
            if query.arrival_time >= duration_s:
                continue
            answers.append(self._answer(query))
            truths.append(self.truth_for(query))
        return self.build_report(answers, truths, duration_s)

    # -- proxy-side zero-order hold --------------------------------------------------

    def _held_value(self, sensor: int, timestamp: float) -> float | None:
        times = self._log_times.get(sensor)
        if times is None or times.size == 0:
            return None
        index = int(np.searchsorted(times, timestamp, side="right")) - 1
        if index < 0:
            return None
        return float(self._log_values[sensor][index])

    def _answer(self, query: Query) -> QueryAnswer:
        sensor = query.sensor
        if query.kind in (QueryKind.NOW, QueryKind.PAST_POINT):
            target = (
                query.arrival_time
                if query.kind is QueryKind.NOW
                else query.target_time
            )
            value = self._held_value(sensor, target)
            if value is None:
                return QueryAnswer(
                    query=query,
                    value=None,
                    source=AnswerSource.FAILED,
                    latency_s=SERVER_PROCESSING_S,
                )
            return QueryAnswer(
                query=query,
                value=value,
                source=AnswerSource.CACHE,
                latency_s=SERVER_PROCESSING_S,
                believed_std=self.delta / 2.0,
            )
        start, end = query.target_time, query.target_time + query.window_s
        times = self._log_times.get(sensor)
        if times is None or times.size == 0:
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=SERVER_PROCESSING_S,
            )
        # Sample the hold signal at epoch resolution across the window.
        step = self.trace.config.epoch_s
        sample_times = np.arange(start, end + step / 2, step)
        held = [self._held_value(sensor, float(t)) for t in sample_times]
        window = np.asarray([v for v in held if v is not None])
        if window.size == 0:
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=SERVER_PROCESSING_S,
            )
        if query.aggregate == "mean":
            value = float(np.mean(window))
        elif query.aggregate == "min":
            value = float(np.min(window))
        else:
            value = float(np.max(window))
        return QueryAnswer(
            query=query,
            value=value,
            source=AnswerSource.CACHE,
            latency_s=SERVER_PROCESSING_S,
            believed_std=self.delta / 2.0,
        )
