"""Direct sensor querying (Directed Diffusion [2] / Cougar [1]).

Table 1 characterises both rows as: NOW queries by direct sensor querying,
**no archival**, no prediction, energy-aware, flat (non-hierarchical).
Each query travels to the sensor itself and the reply travels back, so

* latency includes waking the duty-cycled sensor (half a check interval on
  average) — the paper's "unusable for interactive use" argument;
* PAST queries **fail**: nothing is archived anywhere;
* sensors spend idle-listening energy to stay reachable.

The two variants differ in dissemination: Diffusion floods interest to the
whole cell (every sensor pays an RX per query) before the gradient draws
the reply; Cougar routes the query point-to-point to the one sensor.
"""

from __future__ import annotations

from repro.baselines.common import (
    QUERY_BYTES,
    READING_BYTES,
    SERVER_PROCESSING_S,
    BaselineArchitecture,
    BaselineReport,
)
from repro.core.queries import AnswerSource, QueryAnswer
from repro.traces.workload import Query, QueryKind


class DirectQueryingArchitecture(BaselineArchitecture):
    """Diffusion-style (``flood=True``) or Cougar-style (``flood=False``)."""

    def __init__(self, *args, flood: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.flood = flood
        self.name = "diffusion" if flood else "cougar"

    def run(self, queries: list[Query], duration_s: float) -> BaselineReport:
        """Replay the workload; sensors only ever transmit when queried."""
        answers: list[QueryAnswer] = []
        truths: list[float | None] = []
        for query in queries:
            if query.arrival_time >= duration_s:
                continue
            answers.append(self._answer(query))
            truths.append(self.truth_for(query))
        self.charge_idle(duration_s)
        return self.build_report(answers, truths, duration_s)

    def _answer(self, query: Query) -> QueryAnswer:
        if query.kind is not QueryKind.NOW:
            # No archival tier exists anywhere in this architecture.
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=SERVER_PROCESSING_S,
            )
        sensor = query.sensor
        before = self.meters[sensor].total_j
        if self.flood:
            # Interest dissemination: every sensor in the cell hears it.
            for other in range(self.trace.n_sensors):
                self.charge_downlink_rx(other, QUERY_BYTES)
        else:
            self.charge_downlink_rx(sensor, QUERY_BYTES)
        value = self.reading_at(sensor, query.arrival_time)
        latency = (
            SERVER_PROCESSING_S
            + self.downlink_latency_s(QUERY_BYTES)
            + self.uplink_latency_s(READING_BYTES)
        )
        if value is None:
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=latency,
                sensor_energy_j=self.meters[sensor].total_j - before,
            )
        self.charge_uplink(sensor, READING_BYTES, "radio.reply")
        return QueryAnswer(
            query=query,
            value=value,
            source=AnswerSource.SENSOR_PULL,
            latency_s=latency,
            sensor_energy_j=self.meters[sensor].total_j - before,
            pulled_bytes=READING_BYTES,
        )
