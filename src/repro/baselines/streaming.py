"""Stream-everything architecture (Aurora / Medusa [7]).

Table 1: proxy querying, archival at the server, no prediction, **not**
energy-aware.  Every sensor transmits every reading to the server as it is
taken; the server archives the stream and answers every query locally.
Queries are therefore fast and always answerable — at maximal sensor energy,
which is exactly the trade PRESTO's intro criticises ("this model is less
energy efficient since it does not exploit the fact that only a subset of
sensor data may be actually queried").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    READING_BYTES,
    SERVER_PROCESSING_S,
    BaselineArchitecture,
    BaselineReport,
)
from repro.core.queries import AnswerSource, QueryAnswer
from repro.energy.radio_energy import transfer_energy
from repro.traces.workload import Query, QueryKind


class StreamingArchitecture(BaselineArchitecture):
    """Continuous data streaming into a server-side archive."""

    name = "streaming"

    def run(self, queries: list[Query], duration_s: float) -> BaselineReport:
        """Charge the full stream, then answer queries from the server."""
        per_reading = transfer_energy(self.profile.radio, READING_BYTES)
        horizon_epochs = int(duration_s // self.trace.config.epoch_s)
        for sensor in range(self.trace.n_sensors):
            series = self.trace.values[sensor, :horizon_epochs]
            sent = int(np.count_nonzero(~np.isnan(series)))
            self.meters[sensor].charge("radio.stream", sent * per_reading)
            self.messages += sent
        self.charge_idle(duration_s)

        answers: list[QueryAnswer] = []
        truths: list[float | None] = []
        for query in queries:
            if query.arrival_time >= duration_s:
                continue
            answers.append(self._answer(query))
            truths.append(self.truth_for(query))
        return self.build_report(answers, truths, duration_s)

    def _answer(self, query: Query) -> QueryAnswer:
        """The server holds the whole stream: answer from local archive."""
        if query.kind in (QueryKind.NOW, QueryKind.PAST_POINT):
            target = (
                query.arrival_time
                if query.kind is QueryKind.NOW
                else query.target_time
            )
            value = self.reading_at(query.sensor, target)
        else:
            value = self.truth_for(query)  # server archive == trace window
        if value is None:
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=SERVER_PROCESSING_S,
            )
        return QueryAnswer(
            query=query,
            value=value,
            source=AnswerSource.CACHE,
            latency_s=SERVER_PROCESSING_S,
        )
