"""Baseline architectures and transmission strategies.

Two kinds of baseline live here:

* **Transmission strategies** (:mod:`repro.baselines.strategies`) — the four
  curves of the paper's Figure 2: batched push with/without wavelet
  compression and value-driven push at Δ=1/Δ=2.  These are trace-driven
  calculations over the same energy primitives the DES uses.
* **Storage-policy strategies** (:mod:`repro.baselines.offload_policies`) —
  local wavelet aging vs the collaborative offload planners
  (:mod:`repro.storage.offload`) replayed over one trace per flash sizing,
  reporting fidelity retained per joule per flash byte.
* **Architectures** (:mod:`repro.baselines.direct`,
  :mod:`repro.baselines.streaming`, :mod:`repro.baselines.bbq`,
  :mod:`repro.baselines.value_push`) — one runnable system per row of the
  paper's Table 1 (Directed Diffusion, Cougar, TinyDB/BBQ, Aurora/Medusa),
  all simulated on the same substrate as PRESTO so the comparison table can
  be regenerated quantitatively.
"""

from repro.baselines.bbq import BbqArchitecture
from repro.baselines.common import BaselineReport
from repro.baselines.direct import DirectQueryingArchitecture
from repro.baselines.offload_policies import (
    OffloadStrategyResult,
    storage_policy_sweep,
)
from repro.baselines.strategies import (
    StrategyResult,
    batched_push_energy,
    value_driven_push_energy,
)
from repro.baselines.streaming import StreamingArchitecture
from repro.baselines.value_push import ValuePushArchitecture

__all__ = [
    "StrategyResult",
    "batched_push_energy",
    "value_driven_push_energy",
    "BaselineReport",
    "DirectQueryingArchitecture",
    "StreamingArchitecture",
    "BbqArchitecture",
    "ValuePushArchitecture",
    "OffloadStrategyResult",
    "storage_policy_sweep",
]
