"""Figure 2 transmission strategies, computed trace-driven.

"Figure 2 shows one instance of such query-sensor matching in the case of
temperature data [11], where the impact of batching on overall energy
savings is demonstrated.  Greater batching translates into two energy gains:
(a) fewer packets imply a lower per-packet overhead including ACKs, packet
headers and MAC-layer preambles, and (b) more batching results in better
compression and data cleaning at the source of data ... using wavelet
denoising [12]."

Because none of the four strategies involve feedback (no queries, no model
updates), their energy is a pure function of the trace, so we compute it
directly with the exact same per-packet energy primitives the event
simulation charges.  Readings are multi-channel records (the Intel Lab
motes report temperature, humidity, light and voltage — ``record_bytes``
defaults to 16 = 4 channels x 4 bytes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.energy.constants import MICA2_RADIO, RadioConstants
from repro.energy.radio_energy import burst_transfer_energy
from repro.signal.compress import compress_block, compressed_size_bytes
from repro.traces.intel_lab import TraceSet

#: per-push header: epoch counter + flags
PUSH_HEADER_BYTES = 4
#: per-batch header: start epoch, count, codec id
BATCH_HEADER_BYTES = 8
#: receiver channel-check interval covered by each rendezvous preamble; the
#: 2005-era B-MAC default neighbourhood (100 ms) on the Mica2 bit rate
RENDEZVOUS_CHECK_INTERVAL_S = 0.1


def _rendezvous_preamble_bytes(radio: RadioConstants) -> int:
    """Preamble bytes covering one receiver check interval."""
    return int(RENDEZVOUS_CHECK_INTERVAL_S / radio.byte_time_s)


@dataclass(frozen=True)
class StrategyResult:
    """Energy/traffic outcome of one strategy over a whole trace."""

    name: str
    total_energy_j: float
    per_sensor_energy_j: tuple[float, ...]
    messages: int
    payload_bytes: int
    readings: int

    @property
    def energy_per_sensor_day_j(self) -> float:
        """Convenience: mean energy per sensor-day (needs trace context)."""
        return self.total_energy_j / max(len(self.per_sensor_energy_j), 1)


def value_driven_push_energy(
    trace: TraceSet,
    delta: float,
    record_bytes: int = 16,
    radio: RadioConstants = MICA2_RADIO,
    rendezvous_preamble_bytes: int | None = None,
) -> StrategyResult:
    """Value-driven push: transmit when the reading moved more than *delta*
    from the last transmitted value (zero-order-hold suppression).

    This is the paper's "Value-Driven Push (Delta=1/2)" pair; its energy is
    independent of any batching interval, which is why the two lines in
    Figure 2 are flat.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    preamble = (
        rendezvous_preamble_bytes
        if rendezvous_preamble_bytes is not None
        else _rendezvous_preamble_bytes(radio)
    )
    per_sensor: list[float] = []
    messages = 0
    payload_total = 0
    readings = 0
    payload = record_bytes + PUSH_HEADER_BYTES
    for sensor in range(trace.n_sensors):
        series = trace.values[sensor]
        energy = 0.0
        last_pushed = None
        for value in series:
            if math.isnan(value):
                continue
            readings += 1
            if last_pushed is None or abs(value - last_pushed) > delta:
                energy += burst_transfer_energy(radio, payload, preamble)
                last_pushed = value
                messages += 1
                payload_total += payload
        per_sensor.append(energy)
    return StrategyResult(
        name=f"value_push_delta{delta:g}",
        total_energy_j=float(sum(per_sensor)),
        per_sensor_energy_j=tuple(per_sensor),
        messages=messages,
        payload_bytes=payload_total,
        readings=readings,
    )


def batched_push_energy(
    trace: TraceSet,
    batch_interval_s: float,
    compression: str = "none",
    quant_step: float = 0.05,
    record_bytes: int = 16,
    radio: RadioConstants = MICA2_RADIO,
    rendezvous_preamble_bytes: int | None = None,
) -> StrategyResult:
    """Batched push: accumulate ``batch_interval_s`` of readings, then send.

    ``compression="none"`` ships raw records (the paper's "Batched Push w/o
    Compression"); ``"wavelet"`` denoises + compresses each channel with the
    wavelet codec ("Batched Push w/ Wavelet Denoising").  Wavelet payloads
    are sized from the *temperature* channel's compressed size scaled to the
    number of channels in the record (channels of one mote compress alike).
    """
    if compression not in ("none", "wavelet"):
        raise ValueError(f"unknown compression {compression!r}")
    if batch_interval_s < trace.config.epoch_s:
        raise ValueError(
            f"batch interval {batch_interval_s}s shorter than one epoch"
        )
    epochs_per_batch = max(int(round(batch_interval_s / trace.config.epoch_s)), 1)
    channels = max(record_bytes // 4, 1)
    preamble = (
        rendezvous_preamble_bytes
        if rendezvous_preamble_bytes is not None
        else _rendezvous_preamble_bytes(radio)
    )
    per_sensor: list[float] = []
    messages = 0
    payload_total = 0
    readings = 0
    for sensor in range(trace.n_sensors):
        series = trace.values[sensor]
        energy = 0.0
        for start in range(0, series.shape[0], epochs_per_batch):
            batch = series[start : start + epochs_per_batch]
            batch = batch[~np.isnan(batch)]
            if batch.size == 0:
                continue
            readings += batch.size
            if compression == "none" or batch.size < 4:
                payload = batch.size * record_bytes + BATCH_HEADER_BYTES
            else:
                block = compress_block(batch, quant_step=quant_step)
                payload = compressed_size_bytes(block) * channels + BATCH_HEADER_BYTES
            energy += burst_transfer_energy(radio, payload, preamble)
            messages += 1
            payload_total += payload
        per_sensor.append(energy)
    suffix = "wavelet" if compression == "wavelet" else "raw"
    return StrategyResult(
        name=f"batched_{suffix}_{batch_interval_s:g}s",
        total_energy_j=float(sum(per_sensor)),
        per_sensor_energy_j=tuple(per_sensor),
        messages=messages,
        payload_bytes=payload_total,
        readings=readings,
    )


#: the paper's Figure 2 x-axis, in minutes
FIGURE2_BATCH_MINUTES = (16.5, 33.0, 66.0, 132.0, 264.0, 529.0, 1058.0, 2116.0)


def figure2_trace_config(
    n_sensors: int = 54, duration_days: float = 38.0
) -> "IntelLabConfig":
    """The trace configuration the Figure 2 benchmark uses.

    Matches the published Intel Lab deployment the paper plotted: 54 motes,
    31 s epochs, ~5.5 weeks, *pronounced HVAC cycling* — the short-term
    swings (peak-to-peak well above 2 °C) are what make Δ=1 value-driven
    push expensive relative to Δ=2 and place the crossovers where the paper
    shows them.
    """
    from repro.traces.intel_lab import IntelLabConfig

    return IntelLabConfig(
        n_sensors=n_sensors,
        duration_s=duration_days * 86_400.0,
        epoch_s=31.0,
        hvac_amplitude_c=1.2,
        hvac_period_s=1_800.0,
        noise_std_c=0.1,
        spike_rate_per_day=0.5,
    )


def figure2_sweep(
    trace: TraceSet,
    deltas: tuple[float, float] = (1.0, 2.0),
    quant_step: float = 0.05,
    record_bytes: int = 16,
    radio: RadioConstants = MICA2_RADIO,
    batch_minutes: tuple[float, ...] = FIGURE2_BATCH_MINUTES,
) -> dict[str, list[tuple[float, float]]]:
    """Regenerate all four Figure 2 series.

    Returns ``{series_name: [(batch_minutes, total_energy_j), ...]}``; the
    value-driven series repeat their (interval-independent) energy at every
    x to mirror the paper's flat lines.
    """
    series: dict[str, list[tuple[float, float]]] = {
        "batched_wavelet": [],
        "batched_raw": [],
    }
    for minutes in batch_minutes:
        interval = minutes * 60.0
        wavelet = batched_push_energy(
            trace, interval, "wavelet", quant_step, record_bytes, radio
        )
        raw = batched_push_energy(
            trace, interval, "none", quant_step, record_bytes, radio
        )
        series["batched_wavelet"].append((minutes, wavelet.total_energy_j))
        series["batched_raw"].append((minutes, raw.total_energy_j))
    for delta in deltas:
        result = value_driven_push_energy(trace, delta, record_bytes, radio)
        series[f"value_push_delta{delta:g}"] = [
            (minutes, result.total_energy_j) for minutes in batch_minutes
        ]
    return series
