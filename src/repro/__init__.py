"""PRESTO: a predictive storage architecture for sensor networks.

Full reproduction of Desnoyers, Ganesan, Li, Li & Shenoy (HotOS X, 2005).

Top-level layout:

* :mod:`repro.core` — the paper's contribution (proxy, sensor, push
  protocol, query processing, unified store, simulation harness);
* :mod:`repro.timeseries`, :mod:`repro.signal` — the modelling and
  signal-processing machinery the prediction engine uses;
* :mod:`repro.storage`, :mod:`repro.radio`, :mod:`repro.energy`,
  :mod:`repro.sync`, :mod:`repro.index`, :mod:`repro.simulation` — the
  substrates (flash archive, LPL MAC, energy accounting, clock sync, skip
  graph, event kernel);
* :mod:`repro.traces` — synthetic Intel-Lab-style traces and query
  workloads;
* :mod:`repro.baselines` — the Figure 2 strategies and one executable
  architecture per row of the paper's Table 1.

``python -m repro --help`` lists runnable experiment commands.
"""

__version__ = "1.0.0"
