"""Directory-routed multi-proxy federation.

Section 5 of the paper anticipates deployments with many proxies: sensors
are partitioned across cells, an order-preserving index routes queries to
the proxy owning a sensor, and "caches and prediction models at the
wireless proxies may need to be further replicated at the wired proxies to
enable low-latency query responses".  This module is that deployment story
as one harness:

* :func:`partition_sensors` shards a deployment trace across N proxies
  (contiguous/spatial blocks, round-robin, or variance-balanced);
* every cell is stamped out by :class:`~repro.core.system.CellBuilder` and
  runs on **one shared simulator**, so the whole cluster shares a virtual
  timeline;
* query routing resolves the owning proxy through a skip graph over
  contiguous ownership runs (O(log P) hops, counted and charged as routing
  latency) and consults the :class:`~repro.index.directory.CacheDirectory`
  when the owner is dead;
* wireless proxies' hot summary-cache tails and model trackers are
  replicated to wired proxies on a sync period, and failover answers are
  served from that replicated state — *only* from it, so availability
  experiments measure what replication actually bought.
"""

from __future__ import annotations

import bisect
import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import CacheSnapshot
from repro.core.config import FederationConfig, PrestoConfig
from repro.core.push import ProxyModelTracker
from repro.core.queries import AnswerSource, QueryAnswer
from repro.core.system import CellBuilder, PrestoCell, SystemReport, ground_truth
from repro.index.directory import CacheDirectory
from repro.index.skipgraph import SkipGraph
from repro.simulation.kernel import Simulator
from repro.simulation.process import PeriodicTask
from repro.simulation.randomness import RandomStreams
from repro.sync.clock import ClockModel
from repro.traces.intel_lab import TraceSet
from repro.traces.workload import Query, QueryKind


def partition_sensors(
    trace: TraceSet, n_proxies: int, policy: str
) -> list[list[int]]:
    """Assign the trace's global sensor ids to *n_proxies* shards.

    ``contiguous``
        Spatial blocks of neighbouring ids — one proxy per floor/hallway,
        the paper's deployment sketch.
    ``round_robin``
        Sensor ``i`` goes to proxy ``i % n_proxies`` — maximally interleaved,
        the stress case for routing.
    ``balanced``
        Greedy bin packing by per-sensor signal variance: a proxy's load
        tracks push traffic, which tracks variability, so high-variance
        sensors are spread first.

    Every shard is returned sorted ascending; shard ``k`` belongs to proxy
    ``k``.
    """
    n = trace.n_sensors
    if n_proxies < 1:
        raise ValueError(f"need >= 1 proxy, got {n_proxies}")
    if n_proxies > n:
        raise ValueError(f"{n_proxies} proxies for {n} sensors")
    if policy == "contiguous":
        shards = [list(map(int, block)) for block in np.array_split(np.arange(n), n_proxies)]
    elif policy == "round_robin":
        shards = [list(range(k, n, n_proxies)) for k in range(n_proxies)]
    elif policy == "balanced":
        variance = np.nan_to_num(np.nanvar(trace.values, axis=1), nan=0.0)
        order = np.argsort(-variance, kind="stable")
        loads = [0.0] * n_proxies
        shards = [[] for _ in range(n_proxies)]
        for sensor in order:
            lightest = min(range(n_proxies), key=lambda k: (loads[k], k))
            shards[lightest].append(int(sensor))
            loads[lightest] += float(variance[sensor])
        shards = [sorted(shard) for shard in shards]
    else:
        raise ValueError(f"unknown shard policy {policy!r}")
    if any(not shard for shard in shards):
        raise ValueError(f"policy {policy!r} produced an empty shard")
    return shards


@dataclass
class FederatedCell:
    """One proxy cell plus its place in the federation."""

    cell_id: int
    cell: PrestoCell
    sensor_ids: list[int]          # sorted global ids; local i <-> sensor_ids[i]
    wired: bool
    response_latency_s: float

    @property
    def name(self) -> str:
        """The cell's proxy name (the directory / routing key)."""
        return self.cell.proxy.name

    def to_local(self, global_sensor: int) -> int:
        """Translate a global sensor id into this cell's local numbering."""
        position = bisect.bisect_left(self.sensor_ids, global_sensor)
        if (
            position == len(self.sensor_ids)
            or self.sensor_ids[position] != global_sensor
        ):
            raise ValueError(f"sensor {global_sensor} not in cell {self.name}")
        return position

    def to_global(self, local_sensor: int) -> int:
        """Translate a local sensor index back to the global id."""
        return self.sensor_ids[local_sensor]


@dataclass
class SensorReplica:
    """Replicated hot state of one sensor at sync time.

    ``entries`` is a columnar :class:`CacheSnapshot` — replica queries
    aggregate over its arrays directly; row iteration stays available for
    consumers that want :class:`~repro.core.cache.CacheEntry` views.
    """

    entries: CacheSnapshot
    tracker: ProxyModelTracker | None
    synced_at_s: float


@dataclass
class ProxyReplica:
    """One wired proxy's copy of a wireless proxy's caches and models."""

    owner: str                     # the wireless proxy replicated from
    host: str                      # the wired proxy holding the copy
    sensors: dict[int, SensorReplica] = field(default_factory=dict)
    syncs: int = 0


@dataclass(frozen=True)
class FailoverEvent:
    """One proxy death and how stale its replicated state was at that instant.

    ``replica_staleness_s`` is the age of the newest *entry* any live host
    holds for the dead proxy — the horizon beyond which failover answers
    must extrapolate.  It compounds sync lag with model-driven push
    suppression (a well-predicted sensor legitimately ships nothing for
    hours), so it bounds answer extrapolation depth, not sync recency.
    ``inf`` when nothing was replicated (no plan, or death before the
    first sync): failover then has nothing to serve from.
    """

    proxy: str
    at_s: float
    replica_staleness_s: float


@dataclass
class FederatedReport(SystemReport):
    """A :class:`SystemReport` aggregated across cells, plus routing metrics."""

    n_proxies: int = 1
    shard_policy: str = "contiguous"
    replication_factor: int = 0
    cross_proxy_hops: int = 0      # total skip-graph hops over all queries
    replica_hits: int = 0          # failover queries answered from a replica
    failovers: int = 0             # queries whose owning proxy was dead
    unroutable: int = 0            # queries with no live server at all
    replica_syncs: int = 0
    fault_staleness_s: tuple[float, ...] = ()   # one entry per proxy death
    failover_mean_error: float = float("nan")   # |answer - truth| over failovers
    failover_max_error: float = float("nan")
    cell_reports: list[SystemReport] = field(default_factory=list)

    @property
    def mean_routing_hops(self) -> float:
        """Average skip-graph hops per routed query (NaN with no queries)."""
        if not self.answers:
            return float("nan")
        return self.cross_proxy_hops / len(self.answers)

    @property
    def replica_hit_rate(self) -> float:
        """Fraction of failover queries a replica could answer.

        NaN when no failovers happened — a run without proxy deaths is no
        evidence about replication (same convention as
        :attr:`SystemReport.answered_fraction`).
        """
        if self.failovers == 0:
            return float("nan")
        return self.replica_hits / self.failovers

    @property
    def max_replica_staleness_s(self) -> float:
        """Worst replica age across the run's proxy deaths (NaN: no deaths)."""
        if not self.fault_staleness_s:
            return float("nan")
        return max(self.fault_staleness_s)

    def summary(self) -> dict[str, float]:
        """Flat dict: the single-cell summary plus routing metrics."""
        base = super().summary()
        base.update(
            {
                "n_proxies": float(self.n_proxies),
                "mean_routing_hops": self.mean_routing_hops,
                "replica_hit_rate": self.replica_hit_rate,
                "failovers": float(self.failovers),
                "unroutable": float(self.unroutable),
                "max_replica_staleness_s": self.max_replica_staleness_s,
                "failover_mean_error": self.failover_mean_error,
            }
        )
        return base


class FederatedSystem:
    """A cluster of PRESTO cells behind one directory-routed query front.

    With ``n_proxies=1`` this degenerates to exactly the single-cell
    :class:`~repro.core.system.PrestoSystem` (same seed, same trace — same
    energy, latency and answers), which is the correctness anchor for
    everything the federation adds.

    Proxy death is modelled at the routing layer: a dead proxy's cell keeps
    simulating (its in-simulation state is what the proxy *would* hold, and
    is what a recovered proxy resumes with), but queries can no longer reach
    it — they fail over to the lowest-latency wired proxy holding a replica,
    which answers **only** from the state replicated before the failure.
    """

    def __init__(
        self,
        trace: TraceSet,
        config: PrestoConfig | None = None,
        federation: FederationConfig | None = None,
        seed: int = 0,
        model_clocks: bool = False,
        clock_model: ClockModel | None = None,
    ) -> None:
        self.trace = trace
        self.federation = federation or FederationConfig()
        fed = self.federation
        self.shards = partition_sensors(trace, fed.n_proxies, fed.shard_policy)
        self.sim = Simulator()
        self.streams = RandomStreams(seed=seed)
        builder = CellBuilder(
            config=config, model_clocks=model_clocks, clock_model=clock_model
        )
        self.config = builder.resolve_config(trace)
        builder.config = self.config
        self.cells: list[FederatedCell] = []
        for cell_id, ids in enumerate(self.shards):
            cell = builder.build(
                trace.subset(ids),
                self.sim,
                RandomStreams(seed=seed + cell_id),
                proxy_name=f"proxy{cell_id}",
            )
            wired = cell_id < fed.n_wired
            self.cells.append(
                FederatedCell(
                    cell_id=cell_id,
                    cell=cell,
                    sensor_ids=list(ids),
                    wired=wired,
                    response_latency_s=(
                        fed.wired_latency_s if wired else fed.wireless_latency_s
                    ),
                )
            )
        self._by_name = {fc.name: fc for fc in self.cells}

        # Cluster-wide cache placement and replication planning.
        self.directory = CacheDirectory(replication_factor=fed.replication_factor)
        for fc in self.cells:
            self.directory.register_proxy(
                fc.name, wired=fc.wired, response_latency_s=fc.response_latency_s
            )
            self.directory.publish_cache(fc.name, set(fc.sensor_ids))
        self.replication_plan = self.directory.plan_replication()
        self._replicas: dict[tuple[str, str], ProxyReplica] = {
            (host, owner): ProxyReplica(owner=owner, host=host)
            for owner, hosts in self.replication_plan.items()
            for host in hosts
        }

        # Ownership lookup: one skip-graph node per contiguous run of sensors
        # owned by the same proxy, so "who owns sensor s" is a floor search —
        # O(log P) for contiguous shards, never a dict scan.
        owner_of = {
            sensor: fc.name for fc in self.cells for sensor in fc.sensor_ids
        }
        self._owners = SkipGraph(rng=self.streams.get("federation.skipgraph"))
        for sensor in range(trace.n_sensors):
            if sensor == 0 or owner_of[sensor] != owner_of[sensor - 1]:
                self._owners.insert(float(sensor), owner_of[sensor])

        self.cross_proxy_hops = 0
        self.replica_hits = 0
        self.failovers = 0
        self.unroutable = 0
        self.replica_syncs = 0
        self.failover_events: list[FailoverEvent] = []
        self._query_log: list[tuple[Query, QueryAnswer]] = []
        self._failover_positions: list[int] = []
        self._failures: list[tuple[float, str]] = []
        self._recoveries: list[tuple[float, str]] = []

    # -- membership & failure injection -------------------------------------------

    @property
    def proxy_names(self) -> list[str]:
        """All proxy names, cell order (wired first)."""
        return [fc.name for fc in self.cells]

    def cell_for(self, proxy_name: str) -> FederatedCell:
        """Lookup a federated cell by proxy name."""
        return self._by_name[proxy_name]

    def owner_of(self, sensor: int) -> str:
        """Resolve the owning proxy of a global sensor id (skip-graph route)."""
        name, _ = self._owners.floor_value(float(sensor))
        return name

    def fail_proxy(self, proxy_name: str) -> None:
        """Take a proxy offline right now (queries start failing over).

        Records a :class:`FailoverEvent` with the replica staleness at the
        instant of death — how far back the newest replicated entry sits,
        the extrapolation horizon cascading-failure scenarios chart
        against the sync interval (see :class:`FailoverEvent` for what the
        age does and does not include).
        """
        name = self._by_name[proxy_name].name
        self.failover_events.append(
            FailoverEvent(
                proxy=name,
                at_s=self.sim.now,
                replica_staleness_s=self.replica_staleness_s(name),
            )
        )
        self.directory.mark_down(name)

    def replica_staleness_s(self, proxy_name: str) -> float:
        """Age of the newest entry live hosts hold for *proxy_name* now.

        ``inf`` when no live host holds any replicated entry for the proxy
        — replication was unplanned, never synced, or every host is dead.
        The age is bounded by ``replica_sync_interval_s`` (plus the cache
        tail's own lag) while syncs keep completing, which is what the
        ``staleness_vs_sync`` scenario sweep charts against replication
        cost.
        """
        self._validate_proxy(proxy_name)
        newest = float("-inf")
        for host in self.replication_plan.get(proxy_name, []):
            if not self.directory.proxy(host).alive:
                continue
            replica = self._replicas[(host, proxy_name)]
            for state in replica.sensors.values():
                if state.entries:
                    newest = max(newest, state.entries[-1].timestamp)
        if newest == float("-inf"):
            return float("inf")
        return max(self.sim.now - newest, 0.0)

    def recover_proxy(self, proxy_name: str) -> None:
        """Bring a proxy back online."""
        self.directory.mark_up(self._by_name[proxy_name].name)

    def _validate_proxy(self, proxy_name: str) -> None:
        if proxy_name not in self._by_name:
            raise ValueError(
                f"unknown proxy {proxy_name!r}; have {self.proxy_names}"
            )

    def schedule_failure(self, proxy_name: str, at_s: float) -> None:
        """Kill *proxy_name* at virtual time *at_s* during :meth:`run`."""
        self._validate_proxy(proxy_name)
        self._failures.append((float(at_s), proxy_name))

    def schedule_recovery(self, proxy_name: str, at_s: float) -> None:
        """Recover *proxy_name* at virtual time *at_s* during :meth:`run`."""
        self._validate_proxy(proxy_name)
        self._recoveries.append((float(at_s), proxy_name))

    # -- replication ----------------------------------------------------------------

    def _sync_replicas(self) -> None:
        """Ship each live wireless proxy's hot state to its wired replicas.

        A replica only ever holds state from *before* a failure — sync skips
        dead owners (nothing to ship) and dead hosts (nowhere to ship).
        Each owner is snapshotted once per sync and the (immutable) snapshot
        shared by all its replica hosts.
        """
        now = self.sim.now
        hot = self.federation.hot_entries_per_sensor
        for owner, hosts in self.replication_plan.items():
            if not self.directory.proxy(owner).alive:
                continue
            live_replicas = [
                self._replicas[(host, owner)]
                for host in hosts
                if self.directory.proxy(host).alive
            ]
            if not live_replicas:
                continue
            fc = self._by_name[owner]
            snapshot: dict[int, SensorReplica] = {}
            for local, global_id in enumerate(fc.sensor_ids):
                tail, tracker = fc.cell.proxy.export_replica_state(local, hot)
                if not tail and tracker is None:
                    continue
                snapshot[global_id] = SensorReplica(
                    entries=tail, tracker=tracker, synced_at_s=now
                )
            for replica in live_replicas:
                replica.sensors.update(snapshot)
                replica.syncs += 1
                self.replica_syncs += 1

    def replica_for(self, host: str, owner: str) -> ProxyReplica:
        """The replica of *owner* held at *host* (KeyError if not planned)."""
        return self._replicas[(host, owner)]

    # -- query routing ----------------------------------------------------------------

    def route_query(self, query: Query) -> QueryAnswer:
        """Route one global query to its owner or a live replica and log it.

        Queries enter the federation at the skip graph's entry node.  When
        the floor search ends there (``hops == 0`` — always, with a single
        proxy), the query is served where it arrived and pays nothing
        beyond the cell's own processing; otherwise it pays the routing
        hops *plus* the serving proxy's nominal response latency — which is
        what makes a live 802.11-mesh proxy slow (0.25 s class) and a
        wired replica taking over for it *faster*, the Section 5 argument
        for replicating onto wired proxies.
        """
        fed = self.federation
        if not 0 <= query.sensor < self.trace.n_sensors:
            self.unroutable += 1
            answer = QueryAnswer(
                query=query, value=None, source=AnswerSource.FAILED, latency_s=0.0
            )
            self._query_log.append((query, answer))
            return answer
        owner_name, hops = self._owners.floor_value(float(query.sensor))
        self.cross_proxy_hops += hops
        routing_latency = hops * fed.hop_latency_s
        owner = self.directory.proxy(owner_name)
        if owner.alive:
            if hops > 0:
                routing_latency += owner.response_latency_s
            fc = self._by_name[owner_name]
            local = fc.cell.run_query(self._rewrite(query, fc))
            answer = QueryAnswer(
                query=query,
                value=local.value,
                source=local.source,
                latency_s=local.latency_s + routing_latency,
                believed_std=local.believed_std,
                sensor_energy_j=local.sensor_energy_j,
                pulled_bytes=local.pulled_bytes,
            )
        else:
            self.failovers += 1
            self._failover_positions.append(len(self._query_log))
            answer = self._failover_answer(query, owner_name, routing_latency)
        self._query_log.append((query, answer))
        return answer

    @staticmethod
    def _rewrite(query: Query, fc: FederatedCell) -> Query:
        """Rewrite a global query into the cell's local sensor numbering."""
        return dataclasses.replace(query, sensor=fc.to_local(query.sensor))

    def _failover_answer(
        self, query: Query, owner_name: str, routing_latency: float
    ) -> QueryAnswer:
        """Answer for a dead owner from the best live replica, or fail."""
        best = self.directory.best_server(query.sensor)
        base_latency = self.config.proxy_processing_s + routing_latency
        if best is None or best.name == owner_name:
            self.unroutable += 1
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=base_latency,
            )
        replica = self._replicas[(best.name, owner_name)]
        latency = base_latency + best.response_latency_s
        state = replica.sensors.get(query.sensor)
        estimate = self._replica_estimate(state, query) if state else None
        if estimate is None:
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=latency,
            )
        value, std, source = estimate
        self.replica_hits += 1
        return QueryAnswer(
            query=query,
            value=value,
            source=source,
            latency_s=latency,
            believed_std=std,
        )

    def _replica_estimate(
        self, state: SensorReplica, query: Query
    ) -> tuple[float, float, AnswerSource] | None:
        """Best-effort answer from replicated state frozen at sync time."""
        period = self.config.sample_period_s
        if query.kind is QueryKind.NOW:
            last = state.entries[-1] if state.entries else None
            if last is None:
                return None
            steps = int(round((query.arrival_time - last.timestamp) / period))
            if state.tracker is not None and steps >= 1:
                value, std = state.tracker.forecast_value(steps)
                return value, max(std, last.std), AnswerSource.PREDICTION
            # No model replicated: serve the last synced value, widened by
            # its age (random-walk growth at the push tolerance scale).
            staleness = self.config.push_delta * np.sqrt(max(steps, 0) / 3.0)
            return last.value, last.std + staleness, AnswerSource.PREDICTION
        if query.kind is QueryKind.PAST_POINT:
            position = state.entries.nearest(query.target_time, tolerance_s=period)
            if position is None:
                return None
            best_entry = state.entries[position]
            source = (
                AnswerSource.CACHE if best_entry.is_actual else AnswerSource.PREDICTION
            )
            return best_entry.value, best_entry.std, source
        start = min(query.target_time, query.arrival_time)
        end = min(start + query.window_s, query.arrival_time)
        window = state.entries.window_slice(start, end)
        data = state.entries.values[window]
        if data.size == 0:
            return None
        worst_std = float(state.entries.stds[window].max())
        if query.aggregate == "mean":
            value = float(np.mean(data))
        elif query.aggregate == "min":
            value = float(np.min(data))
        else:
            value = float(np.max(data))
        all_actual = bool(state.entries.actual_mask()[window].all())
        source = AnswerSource.CACHE if all_actual else AnswerSource.PREDICTION
        return value, worst_std, source

    # -- main entry ---------------------------------------------------------------------

    def run(
        self,
        queries: list[Query] | None = None,
        duration_s: float | None = None,
    ) -> FederatedReport:
        """Replay the trace across all cells, routing *queries* globally."""
        queries = queries or []
        horizon = (
            duration_s if duration_s is not None else self.trace.config.duration_s
        )
        for fc in self.cells:
            fc.cell.start_tasks()
        sync_task = None
        if self._replicas:
            sync_task = PeriodicTask(
                self.sim,
                self.federation.replica_sync_interval_s,
                self._sync_replicas,
                start_offset=self.federation.replica_sync_interval_s,
            )
            sync_task.start()
        for at_s, name in self._failures:
            if at_s < horizon:
                self.sim.schedule(at_s, lambda n=name: self.fail_proxy(n))
        for at_s, name in self._recoveries:
            if at_s < horizon:
                self.sim.schedule(at_s, lambda n=name: self.recover_proxy(n))
        for query in queries:
            if query.arrival_time < horizon:
                self.sim.schedule(
                    query.arrival_time, lambda q=query: self.route_query(q)
                )
        self.sim.run_until(horizon)
        for fc in self.cells:
            fc.cell.stop_tasks()
        if sync_task is not None:
            sync_task.stop()
        for fc in self.cells:
            fc.cell.finalise(horizon)
        return self._report(horizon)

    def _failover_errors(
        self, truths: list[float | None]
    ) -> tuple[float, float]:
        """(mean, max) |answer - truth| over answered failover queries.

        This is the replica-answer fidelity bound: how far serving from
        state frozen at the last sync diverged from the dead cell's
        in-simulation truth.  NaN when no failover produced a comparable
        answer.
        """
        errors = []
        for position in self._failover_positions:
            answer = self._query_log[position][1]
            truth = truths[position]
            if answer.value is None or truth is None or np.isnan(truth):
                continue
            errors.append(abs(answer.value - truth))
        if not errors:
            return float("nan"), float("nan")
        return float(np.mean(errors)), float(np.max(errors))

    def _report(self, horizon: float) -> FederatedReport:
        cell_reports = [fc.cell.report(horizon) for fc in self.cells]
        answers = [answer for _, answer in self._query_log]
        truths = [ground_truth(self.trace, query) for query, _ in self._query_log]
        failover_mean_error, failover_max_error = self._failover_errors(truths)
        by_category: dict[str, float] = {}
        for report in cell_reports:
            for category, joules in report.sensor_energy_by_category.items():
                by_category[category] = by_category.get(category, 0.0) + joules
        per_sensor = [0.0] * self.trace.n_sensors
        for fc, report in zip(self.cells, cell_reports):
            for local, global_id in enumerate(fc.sensor_ids):
                per_sensor[global_id] = report.per_sensor_energy_j[local]
        packets_sent = sum(fc.cell.network.packets_sent for fc in self.cells)
        packets_delivered = sum(
            fc.cell.network.packets_delivered for fc in self.cells
        )
        return FederatedReport(
            duration_s=horizon,
            n_sensors=self.trace.n_sensors,
            answers=answers,
            truths=truths,
            sensor_energy_j=sum(r.sensor_energy_j for r in cell_reports),
            sensor_energy_by_category=by_category,
            proxy_energy_j=sum(r.proxy_energy_j for r in cell_reports),
            per_sensor_energy_j=per_sensor,
            pushes=sum(r.pushes for r in cell_reports),
            cold_pushes=sum(r.cold_pushes for r in cell_reports),
            batches=sum(r.batches for r in cell_reports),
            pulls=sum(r.pulls for r in cell_reports),
            pull_failures=sum(r.pull_failures for r in cell_reports),
            packets_sent=packets_sent,
            delivery_ratio=(
                packets_delivered / packets_sent if packets_sent else 1.0
            ),
            model_refits=sum(r.model_refits for r in cell_reports),
            cache_size=sum(r.cache_size for r in cell_reports),
            cache_insertions=sum(r.cache_insertions for r in cell_reports),
            cache_refinements=sum(r.cache_refinements for r in cell_reports),
            cache_evictions=sum(r.cache_evictions for r in cell_reports),
            archive_aged_segments=sum(
                r.archive_aged_segments for r in cell_reports
            ),
            archive_worst_level=max(
                (r.archive_worst_level for r in cell_reports), default=0
            ),
            n_proxies=self.federation.n_proxies,
            shard_policy=self.federation.shard_policy,
            replication_factor=self.federation.replication_factor,
            cross_proxy_hops=self.cross_proxy_hops,
            replica_hits=self.replica_hits,
            failovers=self.failovers,
            unroutable=self.unroutable,
            replica_syncs=self.replica_syncs,
            fault_staleness_s=tuple(
                event.replica_staleness_s for event in self.failover_events
            ),
            failover_mean_error=failover_mean_error,
            failover_max_error=failover_max_error,
            cell_reports=cell_reports,
        )
