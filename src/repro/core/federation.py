"""Directory-routed multi-proxy federation.

Section 5 of the paper anticipates deployments with many proxies: sensors
are partitioned across cells, an order-preserving index routes queries to
the proxy owning a sensor, and "caches and prediction models at the
wireless proxies may need to be further replicated at the wired proxies to
enable low-latency query responses".  This module is that deployment story
as one harness:

* :func:`partition_sensors` shards a deployment trace across N proxies
  (contiguous/spatial blocks, round-robin, or variance-balanced);
* every cell is stamped out by :class:`~repro.core.system.CellBuilder` and
  runs either on **one shared simulator** (``FederationConfig.partitions is
  None``, the original harness) or split across **independent simulation
  partitions** (``partitions >= 1``, or ``0`` for one per core) that
  exchange cross-cell state — replica snapshots, directory liveness,
  routed queries — only at barrier instants, in-process (lockstep windows)
  or across a ``ProcessPoolExecutor``;
* query routing resolves the owning proxy through a skip graph over
  contiguous ownership runs (O(log P) hops, counted and charged as routing
  latency) and consults the :class:`~repro.index.directory.CacheDirectory`
  when the owner is dead;
* wireless proxies' hot summary-cache tails and model trackers are
  replicated to wired proxies on a sync period, and failover answers are
  served from that replicated state — *only* from it, so availability
  experiments measure what replication actually bought.
"""

from __future__ import annotations

import bisect
import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from repro.coding import CodingCounters, CodingReport, FragmentStore, serialize_payload
from repro.core.cache import CacheSnapshot
from repro.core.config import FederationConfig, PrestoConfig
from repro.core.push import ProxyModelTracker
from repro.core.queries import AnswerSource, QueryAnswer
from repro.core.system import CellBuilder, PrestoCell, SystemReport, ground_truth
from repro.index.directory import CacheDirectory
from repro.index.skipgraph import SkipGraph
from repro.radio.link import LinkConfig
from repro.serving.config import ServingConfig, ServingReport
from repro.serving.frontend import BackendSegments, ServingFrontend
from repro.simulation.kernel import LockstepGroup, Simulator, barrier_schedule
from repro.simulation.process import PeriodicTask
from repro.simulation.randomness import RandomStreams
from repro.sync.clock import ClockModel
from repro.traces.intel_lab import TraceSet
from repro.traces.workload import Query, QueryKind


def partition_sensors(
    trace: TraceSet, n_proxies: int, policy: str
) -> list[list[int]]:
    """Assign the trace's global sensor ids to *n_proxies* shards.

    ``contiguous``
        Spatial blocks of neighbouring ids — one proxy per floor/hallway,
        the paper's deployment sketch.
    ``round_robin``
        Sensor ``i`` goes to proxy ``i % n_proxies`` — maximally interleaved,
        the stress case for routing.
    ``balanced``
        Greedy bin packing by per-sensor signal variance: a proxy's load
        tracks push traffic, which tracks variability, so high-variance
        sensors are spread first.

    Every shard is returned sorted ascending; shard ``k`` belongs to proxy
    ``k``.
    """
    n = trace.n_sensors
    if n_proxies < 1:
        raise ValueError(f"need >= 1 proxy, got {n_proxies}")
    if n_proxies > n:
        raise ValueError(f"{n_proxies} proxies for {n} sensors")
    if policy == "contiguous":
        shards = [list(map(int, block)) for block in np.array_split(np.arange(n), n_proxies)]
    elif policy == "round_robin":
        shards = [list(range(k, n, n_proxies)) for k in range(n_proxies)]
    elif policy == "balanced":
        variance = np.nan_to_num(np.nanvar(trace.values, axis=1), nan=0.0)
        order = np.argsort(-variance, kind="stable")
        loads = [0.0] * n_proxies
        shards = [[] for _ in range(n_proxies)]
        for sensor in order:
            lightest = min(range(n_proxies), key=lambda k: (loads[k], k))
            shards[lightest].append(int(sensor))
            loads[lightest] += float(variance[sensor])
        shards = [sorted(shard) for shard in shards]
    else:
        raise ValueError(f"unknown shard policy {policy!r}")
    if any(not shard for shard in shards):
        raise ValueError(f"policy {policy!r} produced an empty shard")
    return shards


def partition_cells(n_cells: int, k: int) -> list[list[int]]:
    """Assign cell ids to *k* simulation partitions (contiguous blocks).

    Contiguous blocks keep each partition's ownership runs contiguous too,
    so pre-routing a query to its owner's partition is a single floor
    lookup.  ``k`` must not exceed ``n_cells`` (no partition may be empty).
    """
    if not 1 <= k <= n_cells:
        raise ValueError(f"need 1 <= partitions <= {n_cells} cells, got {k}")
    return [
        [int(cell) for cell in block]
        for block in np.array_split(np.arange(n_cells), k)
    ]


@dataclass(frozen=True)
class _CellMeta:
    """Static identity of one cell — everything routing needs besides state.

    Shipped to every partition so each holds the *full* membership map
    (directory registrations, skip-graph keys) while building only its own
    cells.
    """

    cell_id: int
    name: str
    wired: bool
    response_latency_s: float


@dataclass
class FederatedCell:
    """One proxy cell plus its place in the federation."""

    cell_id: int
    cell: PrestoCell
    sensor_ids: list[int]          # sorted global ids; local i <-> sensor_ids[i]
    wired: bool
    response_latency_s: float

    @property
    def name(self) -> str:
        """The cell's proxy name (the directory / routing key)."""
        return self.cell.proxy.name

    def to_local(self, global_sensor: int) -> int:
        """Translate a global sensor id into this cell's local numbering."""
        position = bisect.bisect_left(self.sensor_ids, global_sensor)
        if (
            position == len(self.sensor_ids)
            or self.sensor_ids[position] != global_sensor
        ):
            raise ValueError(f"sensor {global_sensor} not in cell {self.name}")
        return position

    def to_global(self, local_sensor: int) -> int:
        """Translate a local sensor index back to the global id."""
        return self.sensor_ids[local_sensor]


@dataclass
class SensorReplica:
    """Replicated hot state of one sensor at sync time.

    ``entries`` is a columnar :class:`CacheSnapshot` — replica queries
    aggregate over its arrays directly; row iteration stays available for
    consumers that want :class:`~repro.core.cache.CacheEntry` views.
    """

    entries: CacheSnapshot
    tracker: ProxyModelTracker | None
    synced_at_s: float


@dataclass
class ProxyReplica:
    """One wired proxy's copy of a wireless proxy's caches and models."""

    owner: str                     # the wireless proxy replicated from
    host: str                      # the wired proxy holding the copy
    sensors: dict[int, SensorReplica] = field(default_factory=dict)
    syncs: int = 0


@dataclass(frozen=True)
class FailoverEvent:
    """One proxy death and how stale its replicated state was at that instant.

    ``replica_staleness_s`` is the age of the newest *entry* any live host
    holds for the dead proxy — the horizon beyond which failover answers
    must extrapolate.  It compounds sync lag with model-driven push
    suppression (a well-predicted sensor legitimately ships nothing for
    hours), so it bounds answer extrapolation depth, not sync recency.
    ``inf`` when nothing was replicated (no plan, or death before the
    first sync): failover then has nothing to serve from.
    """

    proxy: str
    at_s: float
    replica_staleness_s: float


@dataclass
class FederatedReport(SystemReport):
    """A :class:`SystemReport` aggregated across cells, plus routing metrics."""

    n_proxies: int = 1
    shard_policy: str = "contiguous"
    replication_factor: int = 0
    cross_proxy_hops: int = 0      # total skip-graph hops over all queries
    replica_hits: int = 0          # failover queries answered from a replica
    failovers: int = 0             # queries whose owning proxy was dead
    unroutable: int = 0            # queries with no live server at all
    replica_syncs: int = 0
    fault_staleness_s: tuple[float, ...] = ()   # one entry per proxy death
    failover_mean_error: float = float("nan")   # |answer - truth| over failovers
    failover_max_error: float = float("nan")
    cell_reports: list[SystemReport] = field(default_factory=list)
    n_partitions: int = 1          # simulation partitions the run executed on
    serving: ServingReport | None = None        # front-end tier, when enabled
    coding: CodingReport | None = None          # replica-sync byte/decode ledger

    @property
    def mean_routing_hops(self) -> float:
        """Average skip-graph hops per routed query (NaN with no queries)."""
        if not self.answers:
            return float("nan")
        return self.cross_proxy_hops / len(self.answers)

    @property
    def replica_hit_rate(self) -> float:
        """Fraction of failover queries a replica could answer.

        NaN when no failovers happened — a run without proxy deaths is no
        evidence about replication (same convention as
        :attr:`SystemReport.answered_fraction`).
        """
        if self.failovers == 0:
            return float("nan")
        return self.replica_hits / self.failovers

    @property
    def max_replica_staleness_s(self) -> float:
        """Worst replica age across the run's proxy deaths (NaN: no deaths)."""
        if not self.fault_staleness_s:
            return float("nan")
        return max(self.fault_staleness_s)

    def summary(self) -> dict[str, float]:
        """Flat dict: the single-cell summary plus routing metrics."""
        base = super().summary()
        base.update(
            {
                "n_proxies": float(self.n_proxies),
                "mean_routing_hops": self.mean_routing_hops,
                "replica_hit_rate": self.replica_hit_rate,
                "failovers": float(self.failovers),
                "unroutable": float(self.unroutable),
                "max_replica_staleness_s": self.max_replica_staleness_s,
                "failover_mean_error": self.failover_mean_error,
                "n_partitions": float(self.n_partitions),
            }
        )
        if self.serving is not None:
            base.update(self.serving.summary())
        if self.coding is not None:
            base.update(self.coding.summary())
        return base


class _RoutingCore:
    """Directory-routed query answering shared by the coordinator and partitions.

    Both :class:`FederatedSystem` (legacy shared-kernel mode) and
    :class:`_CellPartition` (one partition of a partitioned run) expose the
    same member names — ``federation``, ``config``, ``trace``, ``sim``,
    ``directory``, ``_owners``, ``_by_name``, ``_replicas``,
    ``replication_plan``, the routing counters and ``_query_log`` — so one
    implementation of routing, failover answering and replica syncing
    serves both.  In a partition, ``_by_name`` holds only the locally-built
    cells and every query is pre-routed to its owner's partition, so the
    owner (or its replicas' metadata) is always resolvable locally.
    """

    # -- replication ----------------------------------------------------------------

    def _proxy_alive(self, name: str) -> bool:
        """Directory liveness, in predicate form for the fragment store."""
        return self.directory.proxy(name).alive

    @property
    def _syncs_state(self) -> bool:
        """Whether this core has any replica state to ship on the cadence."""
        if self._fragments is not None:
            return bool(self.replication_plan)
        return bool(self._replicas)

    def _snapshot_owner(self, owner: str, now: float) -> dict[int, SensorReplica]:
        """One owner's hot state at sync time (shared by both coding modes)."""
        hot = self.federation.hot_entries_per_sensor
        fc = self._by_name[owner]
        snapshot: dict[int, SensorReplica] = {}
        for local, global_id in enumerate(fc.sensor_ids):
            tail, tracker = fc.cell.proxy.export_replica_state(local, hot)
            if not tail and tracker is None:
                continue
            snapshot[global_id] = SensorReplica(
                entries=tail, tracker=tracker, synced_at_s=now
            )
        return snapshot

    def _sync_replicas(self) -> None:
        """Ship each live wireless proxy's hot state to its wired replicas.

        A replica only ever holds state from *before* a failure — sync skips
        dead owners (nothing to ship) and dead hosts (nowhere to ship).
        Each owner is snapshotted once per sync; in ``full`` mode the
        (immutable) snapshot object is shared by all its replica hosts, in
        ``rs`` mode its serialized form is striped into fragments and only
        the live hosts' fragments are shipped.  Either way the serialized
        payload and shipped bytes land in the coding ledger — fragment
        bytes replace full-copy bytes in the per-sync radio/flash
        accounting, which is the byte claim ``bench_coding`` gates.
        """
        now = self.sim.now
        fed = self.federation
        for owner, hosts in self.replication_plan.items():
            if not self.directory.proxy(owner).alive:
                continue
            if self._fragments is not None:
                if not self._fragments.live_slots(owner, self._proxy_alive):
                    continue
                snapshot = self._snapshot_owner(owner, now)
                payload = serialize_payload(snapshot)
                shipped, live_hosts = self._fragments.sync(
                    owner, payload, self._proxy_alive
                )
                self._coding.payload_bytes += len(payload)
                self._coding.shipped_bytes += shipped
                self._coding.full_copy_bytes += len(payload) * min(
                    fed.coding_n - fed.coding_k + 1, live_hosts
                )
                self.replica_syncs += live_hosts
                continue
            live_replicas = [
                self._replicas[(host, owner)]
                for host in hosts
                if self.directory.proxy(host).alive
            ]
            if not live_replicas:
                continue
            snapshot = self._snapshot_owner(owner, now)
            payload = serialize_payload(snapshot)
            shipped = len(payload) * len(live_replicas)
            self._coding.payload_bytes += len(payload)
            self._coding.shipped_bytes += shipped
            self._coding.full_copy_bytes += shipped
            for replica in live_replicas:
                replica.sensors.update(snapshot)
                replica.syncs += 1
                self.replica_syncs += 1

    def _replica_staleness(self, proxy_name: str) -> float:
        """Age of the newest entry live hosts hold for *proxy_name* now.

        In ``rs`` mode the newest entry is read off the reconstructed
        snapshot (decodable generations merged oldest-first); while >= k
        fragments of the latest generation survive, this equals the
        full-copy answer for the same host liveness.
        """
        newest = float("-inf")
        if self._fragments is not None:
            merged = self._fragments.reconstruct(proxy_name, self._proxy_alive)
            for state in (merged or {}).values():
                if state.entries:
                    newest = max(newest, state.entries[-1].timestamp)
        else:
            for host in self.replication_plan.get(proxy_name, []):
                if not self.directory.proxy(host).alive:
                    continue
                replica = self._replicas.get((host, proxy_name))
                if replica is None:
                    continue
                for state in replica.sensors.values():
                    if state.entries:
                        newest = max(newest, state.entries[-1].timestamp)
        if newest == float("-inf"):
            return float("inf")
        return max(self.sim.now - newest, 0.0)

    # -- query routing ----------------------------------------------------------------

    def route_query(self, query: Query) -> QueryAnswer:
        """Route one global query to its owner or a live replica and log it.

        Queries enter the federation at the skip graph's entry node.  When
        the floor search ends there (``hops == 0`` — always, with a single
        proxy), the query is served where it arrived and pays nothing
        beyond the cell's own processing; otherwise it pays the routing
        hops *plus* the serving proxy's nominal response latency — which is
        what makes a live 802.11-mesh proxy slow (0.25 s class) and a
        wired replica taking over for it *faster*, the Section 5 argument
        for replicating onto wired proxies.
        """
        fed = self.federation
        if not 0 <= query.sensor < self.trace.n_sensors:
            self.unroutable += 1
            answer = QueryAnswer(
                query=query, value=None, source=AnswerSource.FAILED, latency_s=0.0
            )
            self._query_log.append((query, answer))
            return answer
        owner_name, hops = self._owners.floor_value(float(query.sensor))
        self.cross_proxy_hops += hops
        routing_latency = hops * fed.hop_latency_s
        owner = self.directory.proxy(owner_name)
        if owner.alive:
            if hops > 0:
                routing_latency += owner.response_latency_s
            fc = self._by_name[owner_name]
            local = fc.cell.run_query(self._rewrite(query, fc))
            answer = QueryAnswer(
                query=query,
                value=local.value,
                source=local.source,
                latency_s=local.latency_s + routing_latency,
                believed_std=local.believed_std,
                sensor_energy_j=local.sensor_energy_j,
                pulled_bytes=local.pulled_bytes,
            )
        else:
            self.failovers += 1
            self._failover_positions.append(len(self._query_log))
            answer = self._failover_answer(query, owner_name, routing_latency)
        self._query_log.append((query, answer))
        return answer

    @staticmethod
    def _rewrite(query: Query, fc: FederatedCell) -> Query:
        """Rewrite a global query into the cell's local sensor numbering."""
        return dataclasses.replace(query, sensor=fc.to_local(query.sensor))

    def _failover_answer(
        self, query: Query, owner_name: str, routing_latency: float
    ) -> QueryAnswer:
        """Answer for a dead owner from the best live replica, or fail."""
        best = self.directory.best_server(query.sensor)
        base_latency = self.config.proxy_processing_s + routing_latency
        if best is None or best.name == owner_name:
            self.unroutable += 1
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=base_latency,
            )
        if self._fragments is not None:
            merged = self._fragments.reconstruct(owner_name, self._proxy_alive)
            if merged is None:
                # Fewer than k fragments survive in every generation: the
                # stripe is lost and failover degrades to the unroutable
                # path, exactly as if no replica host were left.
                self._coding.irrecoverable += 1
                self.unroutable += 1
                return QueryAnswer(
                    query=query,
                    value=None,
                    source=AnswerSource.FAILED,
                    latency_s=base_latency,
                )
            state = merged.get(query.sensor)
        else:
            replica = self._replicas[(best.name, owner_name)]
            state = replica.sensors.get(query.sensor)
        latency = base_latency + best.response_latency_s
        estimate = self._replica_estimate(state, query) if state else None
        if estimate is None:
            return QueryAnswer(
                query=query,
                value=None,
                source=AnswerSource.FAILED,
                latency_s=latency,
            )
        value, std, source = estimate
        self.replica_hits += 1
        return QueryAnswer(
            query=query,
            value=value,
            source=source,
            latency_s=latency,
            believed_std=std,
        )

    def _replica_estimate(
        self, state: SensorReplica, query: Query
    ) -> tuple[float, float, AnswerSource] | None:
        """Best-effort answer from replicated state frozen at sync time."""
        period = self.config.sample_period_s
        if query.kind is QueryKind.NOW:
            last = state.entries[-1] if state.entries else None
            if last is None:
                return None
            steps = int(round((query.arrival_time - last.timestamp) / period))
            if state.tracker is not None and steps >= 1:
                value, std = state.tracker.forecast_value(steps)
                return value, max(std, last.std), AnswerSource.PREDICTION
            # No model replicated: serve the last synced value, widened by
            # its age (random-walk growth at the push tolerance scale).
            staleness = self.config.push_delta * np.sqrt(max(steps, 0) / 3.0)
            return last.value, last.std + staleness, AnswerSource.PREDICTION
        if query.kind is QueryKind.PAST_POINT:
            position = state.entries.nearest(query.target_time, tolerance_s=period)
            if position is None:
                return None
            best_entry = state.entries[position]
            source = (
                AnswerSource.CACHE if best_entry.is_actual else AnswerSource.PREDICTION
            )
            return best_entry.value, best_entry.std, source
        start = min(query.target_time, query.arrival_time)
        end = min(start + query.window_s, query.arrival_time)
        window = state.entries.window_slice(start, end)
        data = state.entries.values[window]
        if data.size == 0:
            return None
        worst_std = float(state.entries.stds[window].max())
        if query.aggregate == "mean":
            value = float(np.mean(data))
        elif query.aggregate == "min":
            value = float(np.min(data))
        else:
            value = float(np.max(data))
        all_actual = bool(state.entries.actual_mask()[window].all())
        source = AnswerSource.CACHE if all_actual else AnswerSource.PREDICTION
        return value, worst_std, source


class FederatedSystem(_RoutingCore):
    """A cluster of PRESTO cells behind one directory-routed query front.

    With ``n_proxies=1`` this degenerates to exactly the single-cell
    :class:`~repro.core.system.PrestoSystem` (same seed, same trace — same
    energy, latency and answers), which is the correctness anchor for
    everything the federation adds.

    Proxy death is modelled at the routing layer: a dead proxy's cell keeps
    simulating (its in-simulation state is what the proxy *would* hold, and
    is what a recovered proxy resumes with), but queries can no longer reach
    it — they fail over to the lowest-latency wired proxy holding a replica,
    which answers **only** from the state replicated before the failure.
    """

    def __init__(
        self,
        trace: TraceSet,
        config: PrestoConfig | None = None,
        federation: FederationConfig | None = None,
        seed: int = 0,
        model_clocks: bool = False,
        clock_model: ClockModel | None = None,
        serving: ServingConfig | None = None,
    ) -> None:
        self.trace = trace
        self.federation = federation or FederationConfig()
        fed = self.federation
        self.shards = partition_sensors(trace, fed.n_proxies, fed.shard_policy)
        self.seed = int(seed)
        self.model_clocks = model_clocks
        self.clock_model = clock_model
        self.serving = serving
        self._partitions = fed.resolve_partitions()
        self.sim = Simulator()
        self.streams = RandomStreams(seed=seed)
        builder = CellBuilder(
            config=config, model_clocks=model_clocks, clock_model=clock_model
        )
        self.config = builder.resolve_config(trace)
        builder.config = self.config
        self._cell_meta = [
            _CellMeta(
                cell_id=cell_id,
                name=f"proxy{cell_id}",
                wired=cell_id < fed.n_wired,
                response_latency_s=(
                    fed.wired_latency_s
                    if cell_id < fed.n_wired
                    else fed.wireless_latency_s
                ),
            )
            for cell_id in range(fed.n_proxies)
        ]
        self.cells: list[FederatedCell] = []
        if self._partitions is None:
            # Legacy shared-kernel mode: every cell lives on self.sim.  In
            # partitioned mode cells are built inside their partitions at
            # run() time instead (same builder inputs, so identical cells).
            for cell_id, ids in enumerate(self.shards):
                cell = builder.build(
                    trace.subset(ids),
                    self.sim,
                    RandomStreams(seed=seed + cell_id),
                    proxy_name=f"proxy{cell_id}",
                )
                meta = self._cell_meta[cell_id]
                self.cells.append(
                    FederatedCell(
                        cell_id=cell_id,
                        cell=cell,
                        sensor_ids=list(ids),
                        wired=meta.wired,
                        response_latency_s=meta.response_latency_s,
                    )
                )
        self._by_name = {fc.name: fc for fc in self.cells}

        # Cluster-wide cache placement and replication planning.
        self.directory = CacheDirectory(replication_factor=fed.replication_factor)
        for meta in self._cell_meta:
            self.directory.register_proxy(
                meta.name, wired=meta.wired, response_latency_s=meta.response_latency_s
            )
            self.directory.publish_cache(meta.name, set(self.shards[meta.cell_id]))
        self._coding = CodingCounters()
        if fed.replica_coding == "rs":
            self.replication_plan = self.directory.plan_fragment_placement(
                fed.coding_k, fed.coding_n
            )
            self._replicas: dict[tuple[str, str], ProxyReplica] = {}
            # The coordinator's store covers the whole plan in legacy mode;
            # in partitioned mode it starts empty and the inline backend
            # absorbs the partitions' owner-local fragments at barriers.
            self._fragments: FragmentStore | None = FragmentStore(
                fed.coding_k, fed.coding_n, self.replication_plan
            )
        else:
            self.replication_plan = self.directory.plan_replication()
            self._fragments = None
            self._replicas = (
                {
                    (host, owner): ProxyReplica(owner=owner, host=host)
                    for owner, hosts in self.replication_plan.items()
                    for host in hosts
                }
                if self._partitions is None
                else {}
            )

        # Ownership lookup: one skip-graph node per contiguous run of sensors
        # owned by the same proxy, so "who owns sensor s" is a floor search —
        # O(log P) for contiguous shards, never a dict scan.  The flat map is
        # kept for hop-free pre-routing of queries to partitions.
        self._owner_map = {
            sensor: self._cell_meta[cell_id].name
            for cell_id, ids in enumerate(self.shards)
            for sensor in ids
        }
        self._owners = SkipGraph(rng=self.streams.get("federation.skipgraph"))
        for sensor in range(trace.n_sensors):
            if sensor == 0 or self._owner_map[sensor] != self._owner_map[sensor - 1]:
                self._owners.insert(float(sensor), self._owner_map[sensor])

        self.cross_proxy_hops = 0
        self.replica_hits = 0
        self.failovers = 0
        self.unroutable = 0
        self.replica_syncs = 0
        self.failover_events: list[FailoverEvent] = []
        self._query_log: list[tuple[Query, QueryAnswer]] = []
        self._failover_positions: list[int] = []
        self._failures: list[tuple[float, str]] = []
        self._recoveries: list[tuple[float, str]] = []
        self._link_events: list[tuple[float, LinkConfig, tuple[int, ...] | None]] = []
        self._initial_down: tuple[str, ...] = ()

    # -- membership & failure injection -------------------------------------------

    @property
    def proxy_names(self) -> list[str]:
        """All proxy names, cell order (wired first)."""
        return [meta.name for meta in self._cell_meta]

    @property
    def uses_partitions(self) -> bool:
        """True when this run executes on independent simulation partitions."""
        return self._partitions is not None

    @property
    def n_partitions(self) -> int:
        """Resolved partition count (1 in legacy shared-kernel mode)."""
        return self._partitions if self._partitions is not None else 1

    def cell_for(self, proxy_name: str) -> FederatedCell:
        """Lookup a federated cell by proxy name (legacy mode only —
        partitioned runs build their cells inside the partitions)."""
        return self._by_name[proxy_name]

    def owner_of(self, sensor: int) -> str:
        """Resolve the owning proxy of a global sensor id (skip-graph route)."""
        name, _ = self._owners.floor_value(float(sensor))
        return name

    def fail_proxy(self, proxy_name: str) -> None:
        """Take a proxy offline right now (queries start failing over).

        Records a :class:`FailoverEvent` with the replica staleness at the
        instant of death — how far back the newest replicated entry sits,
        the extrapolation horizon cascading-failure scenarios chart
        against the sync interval (see :class:`FailoverEvent` for what the
        age does and does not include).
        """
        self._validate_proxy(proxy_name)
        self.failover_events.append(
            FailoverEvent(
                proxy=proxy_name,
                at_s=self.sim.now,
                replica_staleness_s=self.replica_staleness_s(proxy_name),
            )
        )
        self.directory.mark_down(proxy_name)

    def replica_staleness_s(self, proxy_name: str) -> float:
        """Age of the newest entry live hosts hold for *proxy_name* now.

        ``inf`` when no live host holds any replicated entry for the proxy
        — replication was unplanned, never synced, or every host is dead.
        The age is bounded by ``replica_sync_interval_s`` (plus the cache
        tail's own lag) while syncs keep completing, which is what the
        ``staleness_vs_sync`` scenario sweep charts against replication
        cost.
        """
        self._validate_proxy(proxy_name)
        return self._replica_staleness(proxy_name)

    def recover_proxy(self, proxy_name: str) -> None:
        """Bring a proxy back online."""
        self._validate_proxy(proxy_name)
        self.directory.mark_up(proxy_name)

    def _validate_proxy(self, proxy_name: str) -> None:
        if not any(meta.name == proxy_name for meta in self._cell_meta):
            raise ValueError(
                f"unknown proxy {proxy_name!r}; have {self.proxy_names}"
            )

    def schedule_failure(self, proxy_name: str, at_s: float) -> None:
        """Kill *proxy_name* at virtual time *at_s* during :meth:`run`."""
        self._validate_proxy(proxy_name)
        self._failures.append((float(at_s), proxy_name))

    def schedule_recovery(self, proxy_name: str, at_s: float) -> None:
        """Recover *proxy_name* at virtual time *at_s* during :meth:`run`."""
        self._validate_proxy(proxy_name)
        self._recoveries.append((float(at_s), proxy_name))

    def schedule_link_change(
        self,
        at_s: float,
        link_config: LinkConfig,
        cell_indices: tuple[int, ...] | list[int] | None = None,
    ) -> None:
        """Swap the radio link config of the targeted cells at *at_s*.

        The partition-safe way to stage loss bursts: in legacy mode this
        schedules directly on the shared kernel; in partitioned mode the
        change is recorded and each partition replays it on its own kernel
        (before any cell task is armed, so equal-time ordering matches a
        pre-run schedule on the shared kernel).  ``cell_indices=None``
        targets every cell.
        """
        cells = tuple(int(c) for c in cell_indices) if cell_indices is not None else None
        if cells is not None:
            for cell_id in cells:
                if not 0 <= cell_id < self.federation.n_proxies:
                    raise ValueError(f"cell index {cell_id} out of range")
        if self._partitions is None:
            targets = [
                fc.cell.network
                for fc in self.cells
                if cells is None or fc.cell_id in cells
            ]
            self.sim.schedule(
                float(at_s),
                lambda nets=targets, cfg=link_config: [
                    net.set_link_config_all(cfg) for net in nets
                ],
            )
        else:
            self._link_events.append((float(at_s), link_config, cells))

    # -- replication ----------------------------------------------------------------

    def replica_for(self, host: str, owner: str) -> ProxyReplica:
        """The replica of *owner* held at *host* (KeyError if not planned).

        In partitioned mode replicas are owner-local to their partitions;
        the inline backend absorbs them into this coordinator view at every
        barrier, while the process backend does not ship them back at all
        (answer content is unaffected — failovers are served inside the
        owner's partition).
        """
        return self._replicas[(host, owner)]

    # -- main entry ---------------------------------------------------------------------

    def run(
        self,
        queries: list[Query] | None = None,
        duration_s: float | None = None,
    ) -> FederatedReport:
        """Replay the trace across all cells, routing *queries* globally.

        With ``FederationConfig.partitions`` set, cells execute on
        independent per-partition kernels (queries pre-routed to their
        owner's partition, faults replayed on every partition's directory
        copy, replica syncs owner-local) and the per-partition logs are
        merged back into the exact report a shared-kernel run produces.
        """
        queries = queries or []
        horizon = (
            duration_s if duration_s is not None else self.trace.config.duration_s
        )
        self._initial_down = tuple(
            meta.name
            for meta in self._cell_meta
            if not self.directory.proxy(meta.name).alive
        )
        if self._partitions is not None:
            report = self._run_partitioned(queries, float(horizon))
            return self._attach_serving(report, float(horizon))
        for fc in self.cells:
            fc.cell.start_tasks()
        sync_task = None
        if self._syncs_state:
            sync_task = PeriodicTask(
                self.sim,
                self.federation.replica_sync_interval_s,
                self._sync_replicas,
                start_offset=self.federation.replica_sync_interval_s,
            )
            sync_task.start()
        for at_s, name in self._failures:
            if at_s < horizon:
                self.sim.schedule(at_s, lambda n=name: self.fail_proxy(n))
        for at_s, name in self._recoveries:
            if at_s < horizon:
                self.sim.schedule(at_s, lambda n=name: self.recover_proxy(n))
        for query in queries:
            if query.arrival_time < horizon:
                self.sim.schedule(
                    query.arrival_time, lambda q=query: self.route_query(q)
                )
        self.sim.run_until(horizon)
        for fc in self.cells:
            fc.cell.stop_tasks()
        if sync_task is not None:
            sync_task.stop()
        for fc in self.cells:
            fc.cell.finalise(horizon)
        if self._fragments is not None:
            self._coding.decodes = self._fragments.decodes
        return self._attach_serving(self._report(horizon), float(horizon))

    def _failover_errors(
        self, truths: list[float | None]
    ) -> tuple[float, float]:
        """(mean, max) |answer - truth| over answered failover queries.

        This is the replica-answer fidelity bound: how far serving from
        state frozen at the last sync diverged from the dead cell's
        in-simulation truth.  NaN when no failover produced a comparable
        answer.
        """
        errors = []
        for position in self._failover_positions:
            answer = self._query_log[position][1]
            truth = truths[position]
            if answer.value is None or truth is None or np.isnan(truth):
                continue
            errors.append(abs(answer.value - truth))
        if not errors:
            return float("nan"), float("nan")
        return float(np.mean(errors)), float(np.max(errors))

    def _report(self, horizon: float) -> FederatedReport:
        cell_reports = [fc.cell.report(horizon) for fc in self.cells]
        packets = [
            (fc.cell.network.packets_sent, fc.cell.network.packets_delivered)
            for fc in self.cells
        ]
        return self._compose_report(horizon, cell_reports, packets)

    def _compose_report(
        self,
        horizon: float,
        cell_reports: list[SystemReport],
        packets: list[tuple[int, int]],
    ) -> FederatedReport:
        """Aggregate per-cell reports plus the routing log into one report.

        ``cell_reports`` and ``packets`` are in cell order — produced
        directly in legacy mode, merged from partition results otherwise.
        """
        answers = [answer for _, answer in self._query_log]
        truths = [ground_truth(self.trace, query) for query, _ in self._query_log]
        failover_mean_error, failover_max_error = self._failover_errors(truths)
        by_category: dict[str, float] = {}
        for report in cell_reports:
            for category, joules in report.sensor_energy_by_category.items():
                by_category[category] = by_category.get(category, 0.0) + joules
        per_sensor = [0.0] * self.trace.n_sensors
        for ids, report in zip(self.shards, cell_reports):
            for local, global_id in enumerate(ids):
                per_sensor[global_id] = report.per_sensor_energy_j[local]
        packets_sent = sum(sent for sent, _ in packets)
        packets_delivered = sum(delivered for _, delivered in packets)
        return FederatedReport(
            duration_s=horizon,
            n_sensors=self.trace.n_sensors,
            answers=answers,
            truths=truths,
            sensor_energy_j=sum(r.sensor_energy_j for r in cell_reports),
            sensor_energy_by_category=by_category,
            proxy_energy_j=sum(r.proxy_energy_j for r in cell_reports),
            per_sensor_energy_j=per_sensor,
            pushes=sum(r.pushes for r in cell_reports),
            cold_pushes=sum(r.cold_pushes for r in cell_reports),
            batches=sum(r.batches for r in cell_reports),
            pulls=sum(r.pulls for r in cell_reports),
            pull_failures=sum(r.pull_failures for r in cell_reports),
            packets_sent=packets_sent,
            delivery_ratio=(
                packets_delivered / packets_sent if packets_sent else 1.0
            ),
            model_refits=sum(r.model_refits for r in cell_reports),
            cache_size=sum(r.cache_size for r in cell_reports),
            cache_insertions=sum(r.cache_insertions for r in cell_reports),
            cache_refinements=sum(r.cache_refinements for r in cell_reports),
            cache_evictions=sum(r.cache_evictions for r in cell_reports),
            archive_aged_segments=sum(
                r.archive_aged_segments for r in cell_reports
            ),
            archive_worst_level=max(
                (r.archive_worst_level for r in cell_reports), default=0
            ),
            segments_offloaded=sum(r.segments_offloaded for r in cell_reports),
            offload_bytes=sum(r.offload_bytes for r in cell_reports),
            remote_reads=sum(r.remote_reads for r in cell_reports),
            # Sensor-count-weighted mean: cells score their own sensors'
            # readings, which are (near-)uniform across the fleet.
            archive_fidelity_retained=(
                sum(r.archive_fidelity_retained * r.n_sensors for r in cell_reports)
                / max(1, sum(r.n_sensors for r in cell_reports))
            ),
            flash_capacity_bytes=sum(r.flash_capacity_bytes for r in cell_reports),
            n_proxies=self.federation.n_proxies,
            shard_policy=self.federation.shard_policy,
            replication_factor=self.federation.replication_factor,
            cross_proxy_hops=self.cross_proxy_hops,
            replica_hits=self.replica_hits,
            failovers=self.failovers,
            unroutable=self.unroutable,
            replica_syncs=self.replica_syncs,
            fault_staleness_s=tuple(
                event.replica_staleness_s for event in self.failover_events
            ),
            failover_mean_error=failover_mean_error,
            failover_max_error=failover_max_error,
            cell_reports=cell_reports,
            n_partitions=self.n_partitions,
            coding=self._coding_report(),
        )

    def _coding_report(self) -> CodingReport:
        """The run's replica-sync byte ledger, priced at the node profile.

        Shipped bytes are charged once on the radio (backhaul transmit)
        and once on the host flash (fragment/copy write) at the profile's
        per-byte rates — so in ``rs`` mode fragment bytes replace
        full-copy bytes in both energy terms.
        """
        fed = self.federation
        profile = self.config.node_profile
        counters = self._coding
        return CodingReport(
            mode=fed.replica_coding,
            k=fed.coding_k,
            n=fed.coding_n,
            payload_bytes=counters.payload_bytes,
            shipped_bytes=counters.shipped_bytes,
            full_copy_bytes=counters.full_copy_bytes,
            decodes=counters.decodes,
            irrecoverable=counters.irrecoverable,
            sync_radio_j=counters.shipped_bytes * profile.radio.tx_energy_per_byte_j,
            sync_flash_j=counters.shipped_bytes * profile.flash.write_energy_per_byte_j,
        )

    # -- partitioned execution ------------------------------------------------------

    def _run_partitioned(self, queries: list[Query], horizon: float) -> FederatedReport:
        """Execute the run across independent per-partition kernels.

        Every query is pre-routed (hop-free flat map) to the partition that
        owns its sensor; the partition re-resolves ownership on its own
        skip-graph copy — built from the same seeded stream, so structure
        and hop counts match the shared-kernel run exactly.  Fault events
        are replayed on every partition's directory copy at identical
        virtual times, keeping liveness in lockstep without mid-run
        communication.  The merged log is ordered by each query's global
        firing rank, which reproduces the shared kernel's (time, seq)
        order.
        """
        k = self._partitions
        assert k is not None
        fed = self.federation
        failures = [(at, name) for at, name in self._failures if at < horizon]
        recoveries = [(at, name) for at, name in self._recoveries if at < horizon]
        assign = partition_cells(fed.n_proxies, k)
        part_of_cell = {
            cell_id: p for p, ids in enumerate(assign) for cell_id in ids
        }
        name_to_cell = {meta.name: meta.cell_id for meta in self._cell_meta}
        routed: dict[int, list[tuple[int, Query]]] = {p: [] for p in range(k)}
        oob: list[tuple[int, Query, QueryAnswer]] = []
        order = sorted(
            range(len(queries)), key=lambda i: queries[i].arrival_time
        )
        position = 0
        for i in order:
            query = queries[i]
            if query.arrival_time >= horizon:
                continue
            if not 0 <= query.sensor < self.trace.n_sensors:
                # Unroutable before it ever reaches a partition — same
                # answer route_query produces, logged at its firing rank.
                answer = QueryAnswer(
                    query=query,
                    value=None,
                    source=AnswerSource.FAILED,
                    latency_s=0.0,
                )
                oob.append((position, query, answer))
            else:
                owner = self._owner_map[query.sensor]
                routed[part_of_cell[name_to_cell[owner]]].append((position, query))
            position += 1
        context = _PartitionContext(
            trace=self.trace,
            config=self.config,
            federation=fed,
            seed=self.seed,
            model_clocks=self.model_clocks,
            clock_model=self.clock_model,
            shards=[list(ids) for ids in self.shards],
            cell_meta=list(self._cell_meta),
            horizon=horizon,
            failures=failures,
            recoveries=recoveries,
            initial_down=self._initial_down,
            link_events=list(self._link_events),
        )
        prerun_events = list(self.failover_events)
        backend = fed.partition_backend
        results: list[_PartitionResult] | None = None
        if k > 1 and backend in ("auto", "process"):
            results = self._run_process(context, assign, routed)
        if results is None:
            results = self._run_inline(context, assign, routed)
        return self._merge_partitions(context, results, oob, prerun_events)

    def _run_inline(
        self,
        context: _PartitionContext,
        assign: list[list[int]],
        routed: dict[int, list[tuple[int, Query]]],
    ) -> list[_PartitionResult]:
        """In-process backend: every partition kernel advances in lockstep.

        Barrier points are the replica-sync cadence plus every fault
        instant; at each barrier the coordinator absorbs the partitions'
        replica stores into its own view — the explicit cross-partition
        message exchange.
        """
        parts = [
            _CellPartition(context, cell_ids, routed[p])
            for p, cell_ids in enumerate(assign)
        ]
        for part in parts:
            part.setup()
        instants = [at for at, _ in context.failures]
        instants += [at for at, _ in context.recoveries]
        interval = (
            context.federation.replica_sync_interval_s
            if any(part._syncs_state for part in parts)
            else None
        )
        barriers = barrier_schedule(
            context.horizon, interval=interval, instants=instants
        )
        group = LockstepGroup([part.sim for part in parts])

        def absorb(_barrier: float) -> None:
            for part in parts:
                self._replicas.update(part._replicas)
                if self._fragments is not None and part._fragments is not None:
                    self._fragments.absorb(part._fragments)

        group.run(barriers, on_barrier=absorb)
        return [part.finish() for part in parts]

    def _run_process(
        self,
        context: _PartitionContext,
        assign: list[list[int]],
        routed: dict[int, list[tuple[int, Query]]],
    ) -> list[_PartitionResult] | None:
        """Process-pool backend: one whole-horizon task per partition.

        The shared context (trace included) ships once per worker via the
        pool initializer; each task carries only its cell ids and
        pre-routed queries.  Returns ``None`` on any pool failure so the
        caller falls back to the inline backend — results are identical,
        only wall-clock differs.
        """
        k = len(assign)
        try:
            with ProcessPoolExecutor(
                max_workers=min(k, os.cpu_count() or 1),
                initializer=_partition_pool_init,
                initargs=(context,),
            ) as pool:
                futures = {
                    pool.submit(_partition_pool_run, (cell_ids, routed[p])): p
                    for p, cell_ids in enumerate(assign)
                }
                results: list[_PartitionResult | None] = [None] * k
                for future in as_completed(futures):
                    results[futures[future]] = future.result()
            assert all(result is not None for result in results)
            return results  # type: ignore[return-value]
        except Exception:
            return None

    def _merge_partitions(
        self,
        context: _PartitionContext,
        results: list[_PartitionResult],
        oob: list[tuple[int, Query, QueryAnswer]],
        prerun_events: list[FailoverEvent],
    ) -> FederatedReport:
        """Fold partition results back into coordinator state and report."""
        entries: list[tuple[int, Query, QueryAnswer, bool]] = [
            (pos, query, answer, False) for pos, query, answer in oob
        ]
        for result in results:
            entries.extend(result.log)
        entries.sort(key=lambda entry: entry[0])
        self._query_log = [(query, answer) for _, query, answer, _ in entries]
        self._failover_positions = [
            i for i, (_, _, _, is_failover) in enumerate(entries) if is_failover
        ]
        self.cross_proxy_hops += sum(r.cross_proxy_hops for r in results)
        self.replica_hits += sum(r.replica_hits for r in results)
        self.failovers += sum(r.failovers for r in results)
        self.unroutable += sum(r.unroutable for r in results) + len(oob)
        self.replica_syncs += sum(r.replica_syncs for r in results)
        for result in results:
            self._coding.absorb(result.coding)
        fault_events = sorted(
            (index, event) for result in results for index, event in result.fault_events
        )
        self.failover_events = prerun_events + [event for _, event in fault_events]
        by_cell: dict[int, SystemReport] = {}
        packets_by_cell: dict[int, tuple[int, int]] = {}
        for result in results:
            for cell_id, report in result.cell_reports:
                by_cell[cell_id] = report
            for cell_id, sent, delivered in result.packets:
                packets_by_cell[cell_id] = (sent, delivered)
        cell_ids = sorted(by_cell)
        cell_reports = [by_cell[cell_id] for cell_id in cell_ids]
        packets = [packets_by_cell[cell_id] for cell_id in cell_ids]
        return self._compose_report(context.horizon, cell_reports, packets)

    # -- serving front-end ----------------------------------------------------------

    def _attach_serving(
        self, report: FederatedReport, horizon: float
    ) -> FederatedReport:
        """Run the query-serving front-end model against this run's topology.

        The front-end is an analytic tier layered over the federation's
        *static* routing facts (ownership, hop counts, response latencies,
        the fault timeline) — it draws its own Zipf-skewed user traffic
        from a dedicated coordinator stream, so the serving numbers are
        identical whichever partition backend executed the cells.
        """
        if self.serving is None:
            return report
        n = self.trace.n_sensors
        k = self.n_partitions
        assign = partition_cells(self.federation.n_proxies, k)
        part_of_cell = {
            cell_id: p for p, ids in enumerate(assign) for cell_id in ids
        }
        name_to_cell = {meta.name: meta.cell_id for meta in self._cell_meta}
        resp = {meta.name: meta.response_latency_s for meta in self._cell_meta}
        owner_names = [self._owner_map[sensor] for sensor in range(n)]
        hops = np.array(
            [self._owners.search(float(sensor)).hops for sensor in range(n)],
            dtype=np.int64,
        )
        partition_of_sensor = np.array(
            [part_of_cell[name_to_cell[name]] for name in owner_names],
            dtype=np.int64,
        )

        # Piecewise-constant backend cost: one segment per fault-timeline
        # state.  A miss pays processing + routing hops + the serving
        # proxy's response latency; with the owner dead it is served by the
        # lowest-latency live replica host, or not at all.
        alive = {
            meta.name: meta.name not in self._initial_down
            for meta in self._cell_meta
        }
        proc = self.config.proxy_processing_s
        hop_latency = self.federation.hop_latency_s
        # In rs mode a dead owner is only servable while >= coding_k of its
        # fragment slots sit on live hosts (enough to decode); a whole copy
        # needs just one live host.
        need_hosts = (
            self.federation.coding_k
            if self.federation.replica_coding == "rs"
            else 1
        )

        def snapshot() -> tuple[np.ndarray, np.ndarray]:
            latency = np.empty(n, dtype=np.float64)
            served = np.ones(n, dtype=bool)
            for sensor in range(n):
                owner = owner_names[sensor]
                base = proc + float(hops[sensor]) * hop_latency
                if alive[owner]:
                    latency[sensor] = base + (
                        resp[owner] if hops[sensor] > 0 else 0.0
                    )
                    continue
                hosts = [
                    host
                    for host in self.replication_plan.get(owner, [])
                    if alive[host]
                ]
                if len(hosts) >= need_hosts:
                    best = min(hosts, key=lambda host: (resp[host], host))
                    latency[sensor] = base + resp[best]
                else:
                    latency[sensor] = base
                    served[sensor] = False
            return latency, served

        changes: list[tuple[float, str, bool]] = [
            (at, name, False) for at, name in self._failures if at < horizon
        ]
        changes += [
            (at, name, True) for at, name in self._recoveries if at < horizon
        ]
        changes.sort(key=lambda change: change[0])  # stable: fails stay first
        boundaries = [0.0]
        states = [snapshot()]
        index = 0
        while index < len(changes):
            at = changes[index][0]
            while index < len(changes) and changes[index][0] == at:
                _, name, up = changes[index]
                alive[name] = up
                index += 1
            boundaries.append(at)
            states.append(snapshot())
        segments = BackendSegments(
            starts=np.asarray(boundaries, dtype=np.float64),
            latencies=np.stack([latency for latency, _ in states]),
            served=np.stack([served for _, served in states]),
        )
        frontend = ServingFrontend(
            config=self.serving,
            n_sensors=n,
            n_partitions=k,
            partition_of_sensor=partition_of_sensor,
            segments=segments,
            rng=self.streams.get("serving.traffic"),
        )
        report.serving = frontend.run(horizon)
        return report


@dataclass(frozen=True)
class _PartitionContext:
    """Everything a partition needs besides its own cell ids and queries.

    Shipped once per pool worker (the trace dominates the payload, exactly
    like PR 6's campaign pool) and shared read-only by the inline backend.
    """

    trace: TraceSet
    config: PrestoConfig
    federation: FederationConfig
    seed: int
    model_clocks: bool
    clock_model: ClockModel | None
    shards: list[list[int]]
    cell_meta: list[_CellMeta]
    horizon: float
    failures: list[tuple[float, str]]       # filtered to < horizon, original order
    recoveries: list[tuple[float, str]]
    initial_down: tuple[str, ...]
    link_events: list[tuple[float, LinkConfig, tuple[int, ...] | None]]


@dataclass
class _PartitionResult:
    """What one partition reports back for merging (picklable)."""

    log: list[tuple[int, Query, QueryAnswer, bool]]   # (global rank, q, a, failover?)
    fault_events: list[tuple[int, FailoverEvent]]     # keyed by failure index
    cross_proxy_hops: int
    replica_hits: int
    failovers: int
    unroutable: int
    replica_syncs: int
    coding: CodingCounters
    cell_reports: list[tuple[int, SystemReport]]
    packets: list[tuple[int, int, int]]               # (cell_id, sent, delivered)


class _CellPartition(_RoutingCore):
    """One simulation partition: a block of cells on a private kernel.

    Holds the *full* federation membership (directory registrations, skip
    graph, replication plan) so routing and failover resolve locally, but
    builds and advances only its own cells.  The fault timeline is replayed
    on the local directory copy at exact virtual times, which keeps
    liveness in lockstep with every other partition without mid-run
    communication; the partition owning a dying cell additionally records
    the :class:`FailoverEvent` (its replicas are local, so the staleness it
    measures is exact).
    """

    def __init__(
        self,
        context: _PartitionContext,
        cell_ids: list[int],
        queries: list[tuple[int, Query]],
    ) -> None:
        self.context = context
        self.trace = context.trace
        self.federation = context.federation
        self.config = context.config
        self.sim = Simulator()
        builder = CellBuilder(
            config=context.config,
            model_clocks=context.model_clocks,
            clock_model=context.clock_model,
        )
        builder.config = context.config
        self.cells: list[FederatedCell] = []
        for cell_id in cell_ids:
            ids = context.shards[cell_id]
            cell = builder.build(
                context.trace.subset(ids),
                self.sim,
                RandomStreams(seed=context.seed + cell_id),
                proxy_name=f"proxy{cell_id}",
            )
            meta = context.cell_meta[cell_id]
            self.cells.append(
                FederatedCell(
                    cell_id=cell_id,
                    cell=cell,
                    sensor_ids=list(ids),
                    wired=meta.wired,
                    response_latency_s=meta.response_latency_s,
                )
            )
        self._by_name = {fc.name: fc for fc in self.cells}

        self.directory = CacheDirectory(
            replication_factor=context.federation.replication_factor
        )
        for meta in context.cell_meta:
            self.directory.register_proxy(
                meta.name, wired=meta.wired, response_latency_s=meta.response_latency_s
            )
            self.directory.publish_cache(
                meta.name, set(context.shards[meta.cell_id])
            )
        self._coding = CodingCounters()
        fed = context.federation
        if fed.replica_coding == "rs":
            # Fragment placement mirrors the coordinator's plan (same
            # directory state, same deterministic spread); each partition
            # keeps only its *local* owners' slots — it is the one syncing
            # and reconstructing their stripes.
            full_plan = self.directory.plan_fragment_placement(
                fed.coding_k, fed.coding_n
            )
            self.replication_plan = {
                owner: hosts
                for owner, hosts in full_plan.items()
                if owner in self._by_name
            }
            self._replicas: dict[tuple[str, str], ProxyReplica] = {}
            self._fragments: FragmentStore | None = FragmentStore(
                fed.coding_k, fed.coding_n, self.replication_plan
            )
        else:
            full_plan = self.directory.plan_replication()
            self.replication_plan = {
                owner: hosts
                for owner, hosts in full_plan.items()
                if owner in self._by_name
            }
            self._replicas = {
                (host, owner): ProxyReplica(owner=owner, host=host)
                for owner, hosts in self.replication_plan.items()
                for host in hosts
            }
            self._fragments = None
        for name in context.initial_down:
            self.directory.mark_down(name)

        owner_of = {
            sensor: context.cell_meta[cell_id].name
            for cell_id, ids in enumerate(context.shards)
            for sensor in ids
        }
        self._owners = SkipGraph(
            rng=RandomStreams(seed=context.seed).get("federation.skipgraph")
        )
        for sensor in range(context.trace.n_sensors):
            if sensor == 0 or owner_of[sensor] != owner_of[sensor - 1]:
                self._owners.insert(float(sensor), owner_of[sensor])

        self.cross_proxy_hops = 0
        self.replica_hits = 0
        self.failovers = 0
        self.unroutable = 0
        self.replica_syncs = 0
        self._query_log: list[tuple[Query, QueryAnswer]] = []
        self._failover_positions: list[int] = []
        self._fault_events: list[tuple[int, FailoverEvent]] = []
        self._queries = queries
        self._sync_task: PeriodicTask | None = None

    def setup(self) -> None:
        """Arm the partition's event queue, mirroring the legacy schedule order.

        Link changes first (the shared-kernel harness stages bursts before
        ``run()``), then cell tasks, then the replica-sync cadence, then
        the fault timeline, then the partition's pre-routed queries — so
        equal-time ties fire in the same relative order as on one shared
        kernel.
        """
        context = self.context
        for at_s, link_config, cell_indices in context.link_events:
            networks = [
                fc.cell.network
                for fc in self.cells
                if cell_indices is None or fc.cell_id in cell_indices
            ]
            if networks:
                self.sim.schedule(
                    at_s,
                    lambda nets=networks, cfg=link_config: [
                        net.set_link_config_all(cfg) for net in nets
                    ],
                )
        for fc in self.cells:
            fc.cell.start_tasks()
        if self._syncs_state:
            interval = context.federation.replica_sync_interval_s
            self._sync_task = PeriodicTask(
                self.sim, interval, self._sync_replicas, start_offset=interval
            )
            self._sync_task.start()
        for index, (at_s, name) in enumerate(context.failures):
            self.sim.schedule(
                at_s, lambda n=name, i=index: self._apply_failure(n, i)
            )
        for at_s, name in context.recoveries:
            self.sim.schedule(at_s, lambda n=name: self.directory.mark_up(n))
        for _, query in self._queries:
            self.sim.schedule(
                query.arrival_time, lambda q=query: self.route_query(q)
            )

    def _apply_failure(self, name: str, failure_index: int) -> None:
        """Replay one death: every partition marks the directory; only the
        dead cell's own partition measures replica staleness (exact — its
        replicas live here) and records the event for the merged report."""
        if name in self._by_name:
            self._fault_events.append(
                (
                    failure_index,
                    FailoverEvent(
                        proxy=name,
                        at_s=self.sim.now,
                        replica_staleness_s=self._replica_staleness(name),
                    ),
                )
            )
        self.directory.mark_down(name)

    def finish(self) -> _PartitionResult:
        """Tear down tasks, finalise cells and package the mergeable result."""
        horizon = self.context.horizon
        for fc in self.cells:
            fc.cell.stop_tasks()
        if self._sync_task is not None:
            self._sync_task.stop()
        for fc in self.cells:
            fc.cell.finalise(horizon)
        assert len(self._query_log) == len(self._queries)
        failover_set = set(self._failover_positions)
        log = [
            (self._queries[i][0], query, answer, i in failover_set)
            for i, (query, answer) in enumerate(self._query_log)
        ]
        if self._fragments is not None:
            self._coding.decodes = self._fragments.decodes
        return _PartitionResult(
            log=log,
            fault_events=self._fault_events,
            cross_proxy_hops=self.cross_proxy_hops,
            replica_hits=self.replica_hits,
            failovers=self.failovers,
            unroutable=self.unroutable,
            replica_syncs=self.replica_syncs,
            coding=self._coding,
            cell_reports=[
                (fc.cell_id, fc.cell.report(horizon)) for fc in self.cells
            ],
            packets=[
                (
                    fc.cell_id,
                    fc.cell.network.packets_sent,
                    fc.cell.network.packets_delivered,
                )
                for fc in self.cells
            ],
        )


#: per-worker shared context for the process backend (set by the initializer)
_PARTITION_POOL_STATE: dict[str, _PartitionContext] = {}


def _partition_pool_init(context: _PartitionContext) -> None:
    _PARTITION_POOL_STATE["context"] = context


def _partition_pool_run(
    task: tuple[list[int], list[tuple[int, Query]]],
) -> _PartitionResult:
    context = _PARTITION_POOL_STATE["context"]
    cell_ids, queries = task
    partition = _CellPartition(context, cell_ids, queries)
    partition.setup()
    partition.sim.run_until(context.horizon)
    return partition.finish()
