"""Deployment-wide configuration for a PRESTO cell and proxy federation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.constants import MICA2_PROFILE, NodeEnergyProfile
from repro.radio.link import LinkConfig
from repro.storage.offload import STORAGE_POLICIES


@dataclass(frozen=True)
class PrestoConfig:
    """All tunables of one proxy + sensors cell.

    Defaults are sized for the Intel-Lab-style temperature workload: 31 s
    sampling, half-hourly seasonal bins, 1 °C push tolerance (the paper's
    Figure 2 sweeps Δ=1 and Δ=2).
    """

    # sampling & modelling
    sample_period_s: float = 31.0
    push_delta: float = 1.0              # model-failure threshold (signal units)
    model_kind: str = "arima"            # seasonal | ar | arima | markov
    seasonal_bins: int = 48
    ar_order: int = 2
    arima_order: tuple[int, int, int] = (1, 1, 0)
    markov_states: int = 32
    training_epochs: int = 2_880         # fit window (~1 day at 30 s)
    refit_interval_s: float = 86_400.0   # ship a fresh model daily
    min_training_epochs: int = 256       # before this, everything is pushed
    retune_interval_s: float = 3_600.0   # query-sensor matching cadence

    # radio / MAC
    node_profile: NodeEnergyProfile = field(default_factory=lambda: MICA2_PROFILE)
    link: LinkConfig = field(default_factory=LinkConfig)
    default_check_interval_s: float = 1.0
    lpl_check_duration_s: float = 3.0e-3

    # archive
    flash_capacity_bytes: int | None = None   # None = device default
    flash_capacity_skew: float = 0.0          # +-fraction, alternating per sensor
    segment_readings: int = 128
    aging_max_level: int = 4
    storage_policy: str = "local_aging"       # local_aging | greedy_offload | mcf_offload

    # proxy cache & extrapolation
    cache_entries_per_sensor: int = 20_000
    proxy_processing_s: float = 0.02     # local query handling latency
    confidence_z: float = 1.0            # std multiplier vs query precision
    spatial_extrapolation: bool = True

    # batching (0 = push immediately on model failure)
    batch_interval_s: float = 0.0
    batch_quant_step: float = 0.05
    batch_use_wavelet: bool = True

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        if self.push_delta <= 0:
            raise ValueError("push delta must be positive")
        if self.model_kind not in ("seasonal", "ar", "arima", "markov", "sarima"):
            raise ValueError(f"unknown model kind {self.model_kind!r}")
        if self.training_epochs < 32:
            raise ValueError("training window unreasonably small")
        if self.min_training_epochs < 2:
            raise ValueError("min training epochs must be >= 2")
        if self.batch_interval_s < 0:
            raise ValueError("batch interval must be >= 0")
        if self.storage_policy not in STORAGE_POLICIES:
            raise ValueError(
                f"unknown storage policy {self.storage_policy!r}; "
                f"expected one of {STORAGE_POLICIES}"
            )
        if not 0.0 <= self.flash_capacity_skew < 1.0:
            raise ValueError("flash capacity skew must be in [0, 1)")


#: recognised sensor-to-proxy sharding policies
SHARD_POLICIES = ("contiguous", "round_robin", "balanced")

#: recognised partition execution backends
PARTITION_BACKENDS = ("auto", "inline", "process")

#: recognised replica-coding modes: whole-copy replication vs k-of-n
#: Reed-Solomon fragments (order matters — sweep codes are 1-based)
REPLICA_CODINGS = ("full", "rs")


def replica_coding_name(code: float) -> str:
    """Map a numeric sweep code (1-based) to its replica-coding mode."""
    index = int(code)
    if float(code) != index or not 1 <= index <= len(REPLICA_CODINGS):
        raise ValueError(
            f"replica-coding code must be a whole number in "
            f"[1, {len(REPLICA_CODINGS)}], got {code}"
        )
    return REPLICA_CODINGS[index - 1]


def replica_coding_code(name: str) -> float:
    """Map a replica-coding mode to its numeric sweep code (1-based)."""
    if name not in REPLICA_CODINGS:
        raise ValueError(
            f"unknown replica coding {name!r}; expected one of {REPLICA_CODINGS}"
        )
    return float(REPLICA_CODINGS.index(name) + 1)


@dataclass(frozen=True)
class FederationConfig:
    """Knobs of a multi-proxy federation (Section 5 deployment).

    A federation partitions one deployment's sensors across ``n_proxies``
    cells.  The first ``max(1, round(wired_fraction * n_proxies))`` proxies
    are wired (low-latency, reliable backhaul); the rest sit on an 802.11
    mesh, and their summary caches and model parameters are replicated onto
    ``replication_factor`` wired proxies every ``replica_sync_interval_s``.

    ``replica_sync_interval_s`` is the staleness/cost dial: replicas answer
    failover queries from state frozen at the last completed sync, so a
    longer interval trades replication traffic for staler failover answers.
    It is also a sweepable scenario parameter — a
    :class:`~repro.scenarios.spec.SweepAxis` over
    ``replica_sync_interval_s`` (see the ``staleness_vs_sync`` built-in)
    charts replica staleness and failover fidelity against that cost.
    """

    n_proxies: int = 1
    shard_policy: str = "contiguous"     # contiguous | round_robin | balanced
    replication_factor: int = 1
    wired_fraction: float = 0.5
    wired_latency_s: float = 0.01        # nominal wired response latency
    wireless_latency_s: float = 0.25     # nominal 802.11-mesh response latency
    hop_latency_s: float = 0.002         # per skip-graph routing hop
    replica_sync_interval_s: float = 3_600.0
    hot_entries_per_sensor: int = 64     # cache tail replicated per sensor

    # Replica coding: ``full`` ships whole snapshot copies to
    # ``replication_factor`` hosts; ``rs`` stripes each sync payload into
    # ``coding_n`` Reed-Solomon fragments (``coding_k`` data + parity) spread
    # over distinct wired hosts — any ``coding_k`` surviving fragments
    # reconstruct the snapshot, so survivability matches a replication
    # factor of ``coding_n - coding_k + 1`` at ``coding_n / coding_k`` times
    # the payload instead of that factor times.  ``coding_k``/``coding_n``
    # are ignored in ``full`` mode.  With fewer than ``coding_n`` live
    # wired hosts, fragments wrap round-robin over the pool (hosts stay
    # maximally spread; co-hosted fragments die together).
    replica_coding: str = "full"
    coding_k: int = 4
    coding_n: int = 6

    # Partitioned execution: ``None`` keeps every cell on one shared kernel
    # (the original harness); ``k >= 1`` splits the cells across ``k``
    # independent simulation partitions that exchange cross-cell state only
    # at barrier instants; ``0`` means one partition per CPU core (capped at
    # ``n_proxies``).  ``partition_backend`` picks how partitions execute:
    # ``inline`` (in-process, lockstep windows), ``process``
    # (``ProcessPoolExecutor``, one whole-horizon task per partition), or
    # ``auto`` (process when more than one partition resolves, else inline).
    partitions: int | None = None
    partition_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_proxies < 1:
            raise ValueError(f"need >= 1 proxy, got {self.n_proxies}")
        if self.shard_policy not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {self.shard_policy!r}; "
                f"expected one of {SHARD_POLICIES}"
            )
        if self.replication_factor < 0:
            raise ValueError("replication factor must be >= 0")
        if not 0.0 <= self.wired_fraction <= 1.0:
            raise ValueError("wired fraction must be in [0, 1]")
        if self.wired_latency_s < 0 or self.wireless_latency_s < 0:
            raise ValueError("response latencies must be >= 0")
        if self.hop_latency_s < 0:
            raise ValueError("hop latency must be >= 0")
        if self.replica_sync_interval_s <= 0:
            raise ValueError("replica sync interval must be positive")
        if self.hot_entries_per_sensor < 1:
            raise ValueError("must replicate at least one entry per sensor")
        if self.replica_coding not in REPLICA_CODINGS:
            raise ValueError(
                f"unknown replica coding {self.replica_coding!r}; "
                f"expected one of {REPLICA_CODINGS}"
            )
        if not 1 <= self.coding_k <= self.coding_n:
            raise ValueError(
                f"need 1 <= coding_k <= coding_n, got "
                f"k={self.coding_k}, n={self.coding_n}"
            )
        if self.coding_n > 255:
            raise ValueError("coding_n exceeds the GF(256) codec's capacity")
        if self.partitions is not None and self.partitions < 0:
            raise ValueError(
                f"partitions must be None, 0 (per-core) or >= 1, got {self.partitions}"
            )
        if self.partition_backend not in PARTITION_BACKENDS:
            raise ValueError(
                f"unknown partition backend {self.partition_backend!r}; "
                f"expected one of {PARTITION_BACKENDS}"
            )

    @property
    def n_wired(self) -> int:
        """How many proxies get wired backhaul (always at least one)."""
        return max(1, int(round(self.wired_fraction * self.n_proxies)))

    def resolve_partitions(self) -> int | None:
        """Concrete partition count: ``None`` (legacy shared kernel) or >= 1.

        ``partitions=0`` resolves to one partition per CPU core, capped at
        ``n_proxies`` so no partition is ever empty.
        """
        if self.partitions is None:
            return None
        if self.partitions == 0:
            import os

            return max(1, min(os.cpu_count() or 1, self.n_proxies))
        return min(self.partitions, self.n_proxies)
