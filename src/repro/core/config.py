"""Deployment-wide configuration for a PRESTO cell."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.constants import MICA2_PROFILE, NodeEnergyProfile
from repro.radio.link import LinkConfig


@dataclass(frozen=True)
class PrestoConfig:
    """All tunables of one proxy + sensors cell.

    Defaults are sized for the Intel-Lab-style temperature workload: 31 s
    sampling, half-hourly seasonal bins, 1 °C push tolerance (the paper's
    Figure 2 sweeps Δ=1 and Δ=2).
    """

    # sampling & modelling
    sample_period_s: float = 31.0
    push_delta: float = 1.0              # model-failure threshold (signal units)
    model_kind: str = "arima"            # seasonal | ar | arima | markov
    seasonal_bins: int = 48
    ar_order: int = 2
    arima_order: tuple[int, int, int] = (1, 1, 0)
    markov_states: int = 32
    training_epochs: int = 2_880         # fit window (~1 day at 30 s)
    refit_interval_s: float = 86_400.0   # ship a fresh model daily
    min_training_epochs: int = 256       # before this, everything is pushed
    retune_interval_s: float = 3_600.0   # query-sensor matching cadence

    # radio / MAC
    node_profile: NodeEnergyProfile = field(default_factory=lambda: MICA2_PROFILE)
    link: LinkConfig = field(default_factory=LinkConfig)
    default_check_interval_s: float = 1.0
    lpl_check_duration_s: float = 3.0e-3

    # archive
    flash_capacity_bytes: int | None = None   # None = device default
    segment_readings: int = 128
    aging_max_level: int = 4

    # proxy cache & extrapolation
    cache_entries_per_sensor: int = 20_000
    proxy_processing_s: float = 0.02     # local query handling latency
    confidence_z: float = 1.0            # std multiplier vs query precision
    spatial_extrapolation: bool = True

    # batching (0 = push immediately on model failure)
    batch_interval_s: float = 0.0
    batch_quant_step: float = 0.05
    batch_use_wavelet: bool = True

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        if self.push_delta <= 0:
            raise ValueError("push delta must be positive")
        if self.model_kind not in ("seasonal", "ar", "arima", "markov", "sarima"):
            raise ValueError(f"unknown model kind {self.model_kind!r}")
        if self.training_epochs < 32:
            raise ValueError("training window unreasonably small")
        if self.min_training_epochs < 2:
            raise ValueError("min training epochs must be >= 2")
        if self.batch_interval_s < 0:
            raise ValueError("batch interval must be >= 0")
