"""PRESTO core: the paper's primary contribution.

The pieces map one-to-one onto the architecture of Figure 1:

* :mod:`repro.core.push` — the model-driven push protocol (proxy builds the
  model, sensor verifies readings against it, silence means "as predicted");
* :mod:`repro.core.cache` — the proxy's summary cache with progressive
  refinement;
* :mod:`repro.core.prediction` — the prediction engine (model fitting,
  temporal + spatial extrapolation, confidence);
* :mod:`repro.core.matching` — query–sensor matching (duty cycle, batching,
  compression tuned to query needs);
* :mod:`repro.core.sensor` / :mod:`repro.core.proxy` — the two active tiers;
* :mod:`repro.core.unified` — the single logical view over many proxies;
* :mod:`repro.core.system` — the simulation harness that wires a whole
  deployment together and replays traces + query workloads;
* :mod:`repro.core.federation` — the multi-proxy cluster: sharding,
  directory-routed queries, replication and failover.
"""

from repro.core.cache import (
    CacheEntry,
    CacheSnapshot,
    EntrySource,
    ListSummaryCache,
    SummaryCache,
)
from repro.core.config import FederationConfig, PrestoConfig
from repro.core.continuous import (
    ContinuousQuery,
    ContinuousQueryEngine,
    Notification,
    TriggerKind,
)
from repro.core.federation import (
    FederatedCell,
    FederatedReport,
    FederatedSystem,
    partition_sensors,
)
from repro.core.matching import QueryProfile, QuerySensorMatcher, SensorOperatingPoint
from repro.core.prediction import PredictionEngine
from repro.core.proxy import PrestoProxy
from repro.core.push import (
    ModelUpdate,
    ProxyModelTracker,
    PushDecision,
    SensorModelChecker,
)
from repro.core.queries import AnswerSource, QueryAnswer
from repro.core.sensor import PrestoSensor
from repro.core.system import CellBuilder, PrestoCell, PrestoSystem, SystemReport
from repro.core.unified import UnifiedStore

__all__ = [
    "PrestoConfig",
    "FederationConfig",
    "AnswerSource",
    "QueryAnswer",
    "CacheEntry",
    "CacheSnapshot",
    "EntrySource",
    "ListSummaryCache",
    "SummaryCache",
    "ContinuousQuery",
    "ContinuousQueryEngine",
    "Notification",
    "TriggerKind",
    "ModelUpdate",
    "ProxyModelTracker",
    "PushDecision",
    "SensorModelChecker",
    "PredictionEngine",
    "QueryProfile",
    "QuerySensorMatcher",
    "SensorOperatingPoint",
    "PrestoSensor",
    "PrestoProxy",
    "UnifiedStore",
    "CellBuilder",
    "PrestoCell",
    "PrestoSystem",
    "SystemReport",
    "FederatedCell",
    "FederatedReport",
    "FederatedSystem",
    "partition_sensors",
]
