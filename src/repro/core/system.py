"""Whole-deployment simulation harness.

Wires a complete PRESTO cell — trace, sensors (with clocks, archives and
energy meters), network, proxy — into one :class:`Simulator`, replays a
query workload against it, and produces the :class:`SystemReport` that every
benchmark and example consumes.

The per-cell construction lives in :class:`CellBuilder` / :class:`PrestoCell`
so that the federation harness (:mod:`repro.core.federation`) can stamp out
many cells over one shared simulator; :class:`PrestoSystem` is the
single-cell wrapper that every existing benchmark uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PrestoConfig
from repro.core.proxy import PrestoProxy
from repro.core.queries import QueryAnswer
from repro.core.sensor import PrestoSensor
from repro.energy.duty_cycle import DutyCycleConfig
from repro.energy.meter import EnergyMeter
from repro.radio.network import Network, NetworkNode
from repro.simulation.kernel import Simulator
from repro.simulation.process import PeriodicTask
from repro.simulation.randomness import RandomStreams
from repro.storage.aging import AgingPolicy
from repro.storage.archive import SensorArchive
from repro.storage.flash import FlashDevice
from repro.storage.offload import OffloadCoordinator, fleet_fidelity
from repro.sync.clock import ClockModel, DriftingClock
from repro.traces.intel_lab import TraceSet
from repro.traces.workload import Query, QueryKind

#: how often bulk idle-listening energy is accounted
IDLE_ACCOUNTING_PERIOD_S = 3600.0


def ground_truth(trace: TraceSet, query: Query) -> float | None:
    """Ground-truth answer for *query* against *trace*.

    Shared by the single-cell and federated harnesses.  Window queries slice
    the value matrix by a searchsorted index range (O(log n) per query)
    instead of recomputing a boolean mask over the full timestamp array.
    """
    if query.kind in (QueryKind.NOW, QueryKind.PAST_POINT):
        target = (
            query.arrival_time if query.kind is QueryKind.NOW else query.target_time
        )
        epoch = trace.epoch_of(min(target, trace.timestamps[-1]))
        value = trace.values[query.sensor, epoch]
        return None if np.isnan(value) else float(value)
    start = query.target_time
    end = start + query.window_s
    window = trace.values[query.sensor, trace.window_slice(start, end)]
    window = window[~np.isnan(window)]
    if window.size == 0:
        return None
    if query.aggregate == "mean":
        return float(np.mean(window))
    if query.aggregate == "min":
        return float(np.min(window))
    return float(np.max(window))


@dataclass
class SystemReport:
    """Everything a benchmark needs from one simulated run."""

    duration_s: float
    n_sensors: int
    answers: list[QueryAnswer]
    truths: list[float | None]
    sensor_energy_j: float
    sensor_energy_by_category: dict[str, float]
    proxy_energy_j: float
    per_sensor_energy_j: list[float]
    pushes: int
    cold_pushes: int
    batches: int
    pulls: int
    pull_failures: int
    packets_sent: int
    delivery_ratio: float
    model_refits: int
    cache_size: int
    cache_insertions: int = 0
    cache_refinements: int = 0
    cache_evictions: int = 0
    #: archive segments the aging policy has compressed below full
    #: resolution, fleet-wide — the wear-out sweeps' knee metric
    archive_aged_segments: int = 0
    #: worst (highest) resolution level any archived segment reached
    archive_worst_level: int = 0
    #: segments shipped to a neighbour's flash by the offload coordinator
    segments_offloaded: int = 0
    #: payload bytes those offload moves carried over the radio
    offload_bytes: int = 0
    #: proxy cache-miss pulls served from a remote host's flash
    remote_reads: int = 0
    #: per-reading retention score of the fleet's archives vs ground truth
    #: (1.0 = every reading ever taken still recoverable at full fidelity)
    archive_fidelity_retained: float = 1.0
    #: total flash capacity across the sensor fleet (device bytes summed)
    flash_capacity_bytes: int = 0

    # -- derived metrics ---------------------------------------------------

    @property
    def mean_latency_s(self) -> float:
        """Mean answer latency."""
        if not self.answers:
            return 0.0
        return float(np.mean([a.latency_s for a in self.answers]))

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile answer latency."""
        if not self.answers:
            return 0.0
        return float(np.percentile([a.latency_s for a in self.answers], 95))

    @property
    def answered_fraction(self) -> float:
        """Fraction of queries that produced a value.

        NaN when no queries ran — "no evidence" must not read as a perfect
        score in benchmark tables.
        """
        if not self.answers:
            return float("nan")
        return float(np.mean([a.answered for a in self.answers]))

    def errors(self) -> list[float]:
        """Absolute errors for answers with known ground truth."""
        out: list[float] = []
        for answer, truth in zip(self.answers, self.truths):
            if truth is None or answer.value is None:
                continue
            out.append(abs(answer.value - truth))
        return out

    @property
    def mean_error(self) -> float:
        """Mean absolute answer error vs ground truth."""
        errors = self.errors()
        return float(np.mean(errors)) if errors else 0.0

    @property
    def success_rate(self) -> float:
        """Answered within both precision and latency bounds.

        NaN when no queries ran (see :attr:`answered_fraction`).
        """
        if not self.answers:
            return float("nan")
        successes = 0
        evaluated = 0
        for answer, truth in zip(self.answers, self.truths):
            evaluated += 1
            if not answer.answered or not answer.met_latency:
                continue
            if truth is not None and answer.value is not None:
                if abs(answer.value - truth) > answer.query.precision:
                    continue
            successes += 1
        return successes / evaluated if evaluated else float("nan")

    def answer_mix(self) -> dict[str, int]:
        """Histogram of answer sources."""
        mix: dict[str, int] = {}
        for answer in self.answers:
            mix[answer.source.value] = mix.get(answer.source.value, 0) + 1
        return mix

    @property
    def sensor_energy_per_day_j(self) -> float:
        """Fleet-average sensor energy per node-day (lifetime proxy)."""
        days = self.duration_s / 86_400.0
        if days <= 0 or self.n_sensors == 0:
            return 0.0
        return self.sensor_energy_j / self.n_sensors / days

    def summary(self) -> dict[str, float]:
        """Flat dict used by benchmark tables."""
        return {
            "sensor_energy_j": self.sensor_energy_j,
            "sensor_energy_per_day_j": self.sensor_energy_per_day_j,
            "mean_latency_s": self.mean_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "mean_error": self.mean_error,
            "success_rate": self.success_rate,
            "answered_fraction": self.answered_fraction,
            "pushes": float(self.pushes),
            "pulls": float(self.pulls),
            "delivery_ratio": self.delivery_ratio,
            "cache_insertions": float(self.cache_insertions),
            "cache_refinements": float(self.cache_refinements),
            "cache_evictions": float(self.cache_evictions),
            "archive_aged_segments": float(self.archive_aged_segments),
            "archive_worst_level": float(self.archive_worst_level),
            "archive_fidelity_retained": float(self.archive_fidelity_retained),
            "segments_offloaded": float(self.segments_offloaded),
            "remote_reads": float(self.remote_reads),
        }


class PrestoCell:
    """One proxy and its sensors, built over a (sub-)trace.

    A cell owns its star network, proxy and sensor fleet but *not* the
    simulator — many cells can share one :class:`Simulator`, which is how
    the federation harness runs a whole proxy cluster in a single virtual
    timeline.  Sensor ids are local to the cell (``0 .. trace.n_sensors-1``);
    any global numbering is the caller's concern.
    """

    def __init__(
        self,
        trace: TraceSet,
        config: PrestoConfig,
        sim: Simulator,
        streams: RandomStreams,
        proxy_name: str = "proxy",
        model_clocks: bool = False,
        clock_model: ClockModel | None = None,
    ) -> None:
        self.trace = trace
        self.config = config
        if abs(config.sample_period_s - trace.config.epoch_s) > 1e-9:
            raise ValueError(
                f"config sample period {config.sample_period_s} != trace "
                f"epoch {trace.config.epoch_s}"
            )
        self.sim = sim
        self.streams = streams
        self.proxy_meter = EnergyMeter(proxy_name)
        self.network = Network(
            sim=sim,
            radio=config.node_profile.radio,
            link_config=config.link,
            default_duty_cycle=DutyCycleConfig(
                check_interval_s=config.default_check_interval_s,
                check_duration_s=config.lpl_check_duration_s,
            ),
            rng=streams.get("radio.loss"),
        )
        self.proxy = PrestoProxy(
            name=proxy_name,
            config=config,
            sim=sim,
            network=self.network,
            meter=self.proxy_meter,
            n_sensors=trace.n_sensors,
        )
        self.network.register_proxy(
            NetworkNode(proxy_name, self.proxy_meter, on_receive=self.proxy.on_receive)
        )
        self.sensors: list[PrestoSensor] = []
        clock_rng = streams.get("sync.clocks")
        for sensor_id in range(trace.n_sensors):
            name = f"sensor{sensor_id}"
            meter = EnergyMeter(name)
            clock = (
                DriftingClock(clock_model or ClockModel(), clock_rng, name)
                if model_clocks
                else None
            )
            node = NetworkNode(name, meter)
            mac = self.network.register_sensor(node)
            flash = FlashDevice(
                config.node_profile.flash,
                meter,
                capacity_bytes=self._sensor_capacity_bytes(config, sensor_id),
            )
            archive = SensorArchive(
                flash,
                segment_readings=config.segment_readings,
                aging_policy=AgingPolicy(max_level=config.aging_max_level),
                sample_period_s=config.sample_period_s,
            )
            sensor = PrestoSensor(
                sensor_id=sensor_id,
                name=name,
                config=config,
                network=self.network,
                mac=mac,
                meter=meter,
                archive=archive,
                proxy_name=proxy_name,
                clock=clock,
            )
            node.on_receive = sensor.handle_packet
            self.sensors.append(sensor)
            self.proxy.register_sensor(sensor)
        self.offload: OffloadCoordinator | None = None
        if config.storage_policy != "local_aging":
            self.offload = OffloadCoordinator(
                policy=config.storage_policy,
                radio=config.node_profile.radio,
                now_fn=lambda: self.sim.now,
            )
            for sensor in self.sensors:
                self.offload.register(sensor.archive)
        self._epoch = 0
        self._query_log: list[tuple[Query, QueryAnswer]] = []
        self._tasks: list[PeriodicTask] = []

    @staticmethod
    def _sensor_capacity_bytes(config: PrestoConfig, sensor_id: int) -> int | None:
        """Per-sensor flash sizing under ``flash_capacity_skew``.

        Zero skew keeps the uniform configured capacity.  A skew of *s*
        alternates sensors between ``(1 - s)`` and ``(1 + s)`` of the
        nominal capacity — a heterogeneous fleet whose total flash equals
        the uniform one's, which is what makes collaborative offload a fair
        comparison against purely local aging.
        """
        if config.flash_capacity_skew == 0.0:
            return config.flash_capacity_bytes
        nominal = config.flash_capacity_bytes or config.node_profile.flash.capacity_bytes
        factor = 1.0 + (config.flash_capacity_skew if sensor_id % 2 else -config.flash_capacity_skew)
        return max(config.node_profile.flash.page_bytes, int(round(nominal * factor)))

    # -- simulation activities ----------------------------------------------------

    def sample_all(self) -> None:
        """Feed the next trace epoch to every sensor."""
        if self._epoch >= self.trace.n_epochs:
            return
        now = self.sim.now
        for sensor in self.sensors:
            value = self.trace.values[sensor.sensor_id, self._epoch]
            if np.isnan(value):
                sensor.on_missed_sample()
                continue
            sensor.on_sample(now, float(value))
        self._epoch += 1

    def account_idle(self) -> None:
        """Charge one period of bulk idle-listening energy."""
        self.network.account_idle_all(IDLE_ACCOUNTING_PERIOD_S)

    def refit_all(self) -> None:
        """Refit and ship models for every sensor."""
        self.proxy.refit_all()

    def retune_all(self) -> None:
        """Re-derive operating points for every sensor."""
        for sensor_id in range(self.trace.n_sensors):
            self.proxy.retune_sensor(sensor_id)

    def run_query(self, query: Query) -> QueryAnswer:
        """Process one (cell-local) query and log it for the report."""
        answer = self.proxy.process_query(query)
        self._query_log.append((query, answer))
        return answer

    # -- lifecycle ---------------------------------------------------------------

    def start_tasks(self) -> None:
        """Arm the cell's periodic activities on the shared simulator."""
        period = self.config.sample_period_s
        self._tasks = [
            PeriodicTask(self.sim, period, self.sample_all, start_offset=0.0),
            PeriodicTask(
                self.sim,
                IDLE_ACCOUNTING_PERIOD_S,
                self.account_idle,
                start_offset=IDLE_ACCOUNTING_PERIOD_S,
            ),
            PeriodicTask(
                self.sim,
                self.config.refit_interval_s,
                self.refit_all,
                start_offset=self.config.min_training_epochs * period + 1.0,
            ),
            PeriodicTask(
                self.sim,
                self.config.retune_interval_s,
                self.retune_all,
                start_offset=self.config.retune_interval_s,
            ),
        ]
        for task in self._tasks:
            task.start()

    def stop_tasks(self) -> None:
        """Disarm all periodic activities."""
        for task in self._tasks:
            task.stop()
        self._tasks = []

    def finalise(self, horizon: float) -> None:
        """Account the idle tail and flush pending sensor batches."""
        remainder = horizon % IDLE_ACCOUNTING_PERIOD_S
        if remainder > 0:
            self.network.account_idle_all(remainder)
        for sensor in self.sensors:
            sensor.flush_batch()

    # -- reporting ----------------------------------------------------------------

    def report(self, horizon: float) -> SystemReport:
        """Assemble the cell's :class:`SystemReport` (local numbering)."""
        answers = [answer for _, answer in self._query_log]
        truths = [ground_truth(self.trace, query) for query, _ in self._query_log]
        fleet = EnergyMeter("fleet")
        per_sensor: list[float] = []
        aged_segments = 0
        worst_level = 0
        for sensor in self.sensors:
            fleet.merge(sensor.meter)
            per_sensor.append(sensor.meter.total_j)
            for level, count in sensor.archive.resolution_profile().items():
                if level > 0:
                    aged_segments += count
                    worst_level = max(worst_level, level)
        fidelity = fleet_fidelity(
            [sensor.archive for sensor in self.sensors],
            self.trace.values,
            self.trace.config.epoch_s,
        )
        capacity_bytes = sum(
            sensor.archive.flash.capacity_bytes for sensor in self.sensors
        )
        return SystemReport(
            duration_s=horizon,
            n_sensors=len(self.sensors),
            answers=answers,
            truths=truths,
            sensor_energy_j=fleet.total_j,
            sensor_energy_by_category=fleet.snapshot().by_category,
            proxy_energy_j=self.proxy_meter.total_j,
            per_sensor_energy_j=per_sensor,
            pushes=sum(s.pushes_sent for s in self.sensors),
            cold_pushes=sum(s.cold_pushes for s in self.sensors),
            batches=sum(s.batches_sent for s in self.sensors),
            pulls=self.proxy.pull_stats.requests,
            pull_failures=self.proxy.pull_stats.failures,
            packets_sent=self.network.packets_sent,
            delivery_ratio=self.network.delivery_ratio,
            model_refits=self.proxy.engine.refits,
            cache_size=self.proxy.cache.size(),
            cache_insertions=self.proxy.cache.insertions,
            cache_refinements=self.proxy.cache.refinements,
            cache_evictions=self.proxy.cache.evictions,
            archive_aged_segments=aged_segments,
            archive_worst_level=worst_level,
            segments_offloaded=self.offload.stats.segments_offloaded if self.offload else 0,
            offload_bytes=self.offload.stats.bytes_offloaded if self.offload else 0,
            remote_reads=self.offload.stats.remote_reads if self.offload else 0,
            archive_fidelity_retained=fidelity,
            flash_capacity_bytes=capacity_bytes,
        )


@dataclass
class CellBuilder:
    """Reusable recipe for stamping out :class:`PrestoCell` instances.

    The builder carries everything that is common across cells of one
    deployment (the PRESTO config and clock modelling); :meth:`build` takes
    what varies per cell — the trace shard, the shared simulator, the cell's
    own random streams, and the proxy name.
    """

    config: PrestoConfig | None = None
    model_clocks: bool = False
    clock_model: ClockModel | None = field(default=None)

    def resolve_config(self, trace: TraceSet) -> PrestoConfig:
        """The PRESTO config to use for *trace* (defaults to its epoch)."""
        return self.config or PrestoConfig(sample_period_s=trace.config.epoch_s)

    def build(
        self,
        trace: TraceSet,
        sim: Simulator,
        streams: RandomStreams,
        proxy_name: str = "proxy",
    ) -> PrestoCell:
        """Construct one cell over *trace* on the shared *sim*."""
        return PrestoCell(
            trace=trace,
            config=self.resolve_config(trace),
            sim=sim,
            streams=streams,
            proxy_name=proxy_name,
            model_clocks=self.model_clocks,
            clock_model=self.clock_model,
        )


class PrestoSystem:
    """Builder + runner for one PRESTO cell over a trace and workload."""

    def __init__(
        self,
        trace: TraceSet,
        config: PrestoConfig | None = None,
        seed: int = 0,
        model_clocks: bool = False,
        clock_model: ClockModel | None = None,
        proxy_name: str = "proxy",
    ) -> None:
        self.trace = trace
        self.streams = RandomStreams(seed=seed)
        self.sim = Simulator()
        builder = CellBuilder(
            config=config, model_clocks=model_clocks, clock_model=clock_model
        )
        self.cell = builder.build(trace, self.sim, self.streams, proxy_name)
        self.config = self.cell.config
        # Aliases kept for every consumer of the pre-federation attribute set.
        self.proxy_meter = self.cell.proxy_meter
        self.network = self.cell.network
        self.proxy = self.cell.proxy
        self.sensors = self.cell.sensors

    # -- ground truth ----------------------------------------------------------------

    def _truth_for(self, query: Query) -> float | None:
        return ground_truth(self.trace, query)

    # -- main entry ---------------------------------------------------------------------

    def run(
        self,
        queries: list[Query] | None = None,
        duration_s: float | None = None,
    ) -> SystemReport:
        """Replay the trace (and queries) and collect the report."""
        queries = queries or []
        horizon = duration_s if duration_s is not None else self.trace.config.duration_s
        self.cell.start_tasks()
        for query in queries:
            if query.arrival_time < horizon:
                self.sim.schedule(
                    query.arrival_time, lambda q=query: self.cell.run_query(q)
                )
        self.sim.run_until(horizon)
        self.cell.stop_tasks()
        self.cell.finalise(horizon)
        return self.cell.report(horizon)
