"""Query answers and their provenance.

Queries themselves are defined in :mod:`repro.traces.workload` (they are
workload artefacts); this module defines what comes back — the answer, the
error bound the proxy believed, where the data came from, and what the
answer cost in latency and sensor energy.  Provenance is central to the
paper's evaluation story: the architecture wins when most answers come from
``CACHE`` or ``PREDICTION`` instead of ``SENSOR_PULL``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.traces.workload import Query


class AnswerSource(enum.Enum):
    """Where a query answer was produced."""

    CACHE = "cache"                    # cached actual data (pushed or pulled)
    PREDICTION = "prediction"          # temporal model extrapolation
    SPATIAL = "spatial"                # conditioned on neighbouring sensors
    SENSOR_PULL = "sensor_pull"        # fetched from the sensor archive
    FAILED = "failed"                  # could not answer within bounds


@dataclass(frozen=True)
class QueryAnswer:
    """Outcome of one query against a PRESTO cell or baseline."""

    query: Query
    value: float | None
    source: AnswerSource
    latency_s: float
    believed_std: float = 0.0      # proxy's own error estimate
    sensor_energy_j: float = 0.0   # marginal sensor-side energy this query caused
    pulled_bytes: int = 0

    @property
    def answered(self) -> bool:
        """Whether any value was produced."""
        return self.value is not None and self.source is not AnswerSource.FAILED

    @property
    def met_latency(self) -> bool:
        """Whether the latency bound was met."""
        return self.latency_s <= self.query.latency_bound_s

    def error_against(self, truth: float) -> float | None:
        """Absolute error against ground truth (None if unanswered)."""
        if self.value is None:
            return None
        return abs(self.value - truth)
