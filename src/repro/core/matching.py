"""Query–sensor matching.

Section 3: "The query type, frequency, latency and precision requirements
are translated into the appropriate parameters for the remote sensors, such
that they can minimize energy while achieving query requirements.  For
instance, if it is known that the worst case notification latency for
typical queries is 10 minutes, the proxy can instruct remote sensors to set
its radio duty-cycling parameters accordingly."

The matcher observes the query stream, summarises it into a
:class:`QueryProfile`, and derives a :class:`SensorOperatingPoint`: the LPL
check interval (bounded by the latency headroom), the push delta and batch
quantisation (bounded by the precision queries actually ask for), and the
batching interval (bounded by how stale a NOW answer may be).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PrestoConfig
from repro.traces.workload import Query, QueryKind


@dataclass
class QueryProfile:
    """Running summary of observed query characteristics."""

    count: int = 0
    now_count: int = 0
    min_precision: float = float("inf")
    min_latency_bound_s: float = float("inf")
    arrival_rate_per_s: float = 0.0
    _first_arrival: float | None = None
    _last_arrival: float | None = None

    def observe(self, query: Query) -> None:
        """Fold one query into the profile."""
        self.count += 1
        if query.kind is QueryKind.NOW:
            self.now_count += 1
        self.min_precision = min(self.min_precision, query.precision)
        self.min_latency_bound_s = min(self.min_latency_bound_s, query.latency_bound_s)
        if self._first_arrival is None:
            self._first_arrival = query.arrival_time
        self._last_arrival = query.arrival_time
        span = (self._last_arrival - self._first_arrival) or 1.0
        if self.count > 1:
            self.arrival_rate_per_s = (self.count - 1) / span

    @property
    def now_fraction(self) -> float:
        """Fraction of queries about the current state."""
        if self.count == 0:
            return 0.0
        return self.now_count / self.count


@dataclass(frozen=True)
class SensorOperatingPoint:
    """Proxy-chosen parameters shipped to a sensor.

    ``wire_bytes`` is the cost of transmitting the operating point.
    """

    check_interval_s: float
    push_delta: float
    batch_interval_s: float
    quant_step: float
    use_wavelet: bool

    @property
    def wire_bytes(self) -> int:
        """Four floats + a flag + header."""
        return 4 * 4 + 1 + 2


class QuerySensorMatcher:
    """Derives sensor operating points from query characteristics."""

    #: never let the radio sleep longer than this between checks
    MAX_CHECK_INTERVAL_S = 600.0
    #: nor wake it more often than this
    MIN_CHECK_INTERVAL_S = 0.125

    def __init__(self, config: PrestoConfig) -> None:
        self.config = config
        self.profile = QueryProfile()
        self.retunes = 0

    def observe_query(self, query: Query) -> None:
        """Feed one arriving query into the matcher's profile."""
        self.profile.observe(query)

    def derive_operating_point(self) -> SensorOperatingPoint:
        """Best operating point for the current profile.

        Rules (all directly from the paper's examples):

        * *duty cycle from latency*: a pull must round-trip within the
          tightest latency bound; the downlink wait is ~half the check
          interval, so ``check_interval <= latency_bound``.  With no queries
          observed yet, fall back to the configured default.
        * *delta and quantisation from precision*: pushes must keep the
          proxy within the tightest precision queries ask for; batched data
          may be quantised to half that precision ("if the queries only
          require 75% precision ... lossy compression ... can be used").
        * *batching from interactivity*: when no NOW queries are arriving,
          readings can be batched up to the latency bound (or the configured
          batch interval if one is forced).
        """
        cfg = self.config
        profile = self.profile

        if profile.count == 0:
            check_interval = cfg.default_check_interval_s
            delta = cfg.push_delta
            quant = cfg.batch_quant_step
            batch = cfg.batch_interval_s
        else:
            headroom = max(profile.min_latency_bound_s * 0.5, 0.25)
            check_interval = min(
                max(headroom, self.MIN_CHECK_INTERVAL_S), self.MAX_CHECK_INTERVAL_S
            )
            # Most of the tightest precision, with headroom for sensing
            # noise between the model check and the ground truth a user
            # compares against.
            delta = min(cfg.push_delta, max(profile.min_precision * 0.75, 1e-3))
            quant = max(min(cfg.batch_quant_step, profile.min_precision / 2.0), 1e-4)
            if profile.now_fraction == 0.0 and profile.count >= 5:
                batch = max(cfg.batch_interval_s, profile.min_latency_bound_s)
            else:
                batch = cfg.batch_interval_s
        self.retunes += 1
        return SensorOperatingPoint(
            check_interval_s=check_interval,
            push_delta=delta,
            batch_interval_s=batch,
            quant_step=quant,
            use_wavelet=cfg.batch_use_wavelet,
        )

    @staticmethod
    def check_interval_for_latency(latency_bound_s: float) -> float:
        """Standalone rule used by the duty-cycle ablation benchmark."""
        if latency_bound_s <= 0:
            raise ValueError(f"latency bound must be positive, got {latency_bound_s}")
        headroom = max(latency_bound_s * 0.5, 0.25)
        return min(
            max(headroom, QuerySensorMatcher.MIN_CHECK_INTERVAL_S),
            QuerySensorMatcher.MAX_CHECK_INTERVAL_S,
        )
