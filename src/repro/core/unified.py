"""The unified logical store across proxies.

Section 5's data abstraction: "a single logical view of data that
integrates archived data stored at numerous distributed remote sensors as
well as caches and prediction models at numerous proxies".  The store

* routes queries to the responsible proxy through the order-preserving
  interval index (skip-graph hops are accounted as routing latency);
* tolerates proxy failure by consulting the replicated cache directory and
  redirecting to the best live replica (wired proxies preferred);
* provides the temporally ordered cross-proxy view of detections, with
  sensor timestamps corrected by each proxy's sync estimates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.proxy import PrestoProxy
from repro.core.queries import AnswerSource, QueryAnswer
from repro.index.directory import CacheDirectory
from repro.index.interval import IntervalIndex
from repro.traces.workload import Query

#: nominal per-hop latency in the proxy overlay (wired mesh)
HOP_LATENCY_S = 0.002


@dataclass(frozen=True)
class ProxyCell:
    """One proxy and the contiguous global sensor range it manages.

    ``sensor_stamped`` declares the time frame of the cell's cached
    timestamps.  The epoch-driven push protocol stamps entries from the
    shared epoch counter — already proxy frame, nothing to correct
    (the default).  Detection-style stores whose motes stamp
    observations with their own free-running clocks set it True, and
    :meth:`UnifiedStore.ordered_view` maps those stamps through the
    proxy's sync estimates before merging.
    """

    proxy: PrestoProxy
    first_sensor: int
    last_sensor: int
    wired: bool = True
    response_latency_s: float = 0.01
    sensor_stamped: bool = False

    def __post_init__(self) -> None:
        if self.last_sensor < self.first_sensor:
            raise ValueError("empty sensor range")

    def to_local(self, global_sensor: int) -> int:
        """Translate a global sensor id into the proxy's local numbering."""
        if not self.first_sensor <= global_sensor <= self.last_sensor:
            raise ValueError(
                f"sensor {global_sensor} outside "
                f"[{self.first_sensor}, {self.last_sensor}]"
            )
        return global_sensor - self.first_sensor


class UnifiedStore:
    """Single logical query interface over many PRESTO cells."""

    def __init__(self, replication_factor: int = 1) -> None:
        self._cells: dict[str, ProxyCell] = {}
        self.index = IntervalIndex()
        self.directory = CacheDirectory(replication_factor=replication_factor)
        self.routed_queries = 0
        self.rerouted_queries = 0
        self.unroutable_queries = 0

    # -- membership -------------------------------------------------------------

    def add_cell(self, cell: ProxyCell) -> None:
        """Register a proxy and its sensor range."""
        name = cell.proxy.name
        if name in self._cells:
            raise ValueError(f"duplicate proxy {name!r}")
        self._cells[name] = cell
        self.index.assign(name, float(cell.first_sensor), float(cell.last_sensor))
        self.directory.register_proxy(
            name, wired=cell.wired, response_latency_s=cell.response_latency_s
        )
        self.directory.publish_cache(
            name, set(range(cell.first_sensor, cell.last_sensor + 1))
        )

    def plan_replication(self) -> dict[str, list[str]]:
        """Replicate wireless proxies' caches onto wired ones."""
        return self.directory.plan_replication()

    def cell(self, proxy_name: str) -> ProxyCell:
        """Lookup a registered cell."""
        return self._cells[proxy_name]

    def mark_proxy_down(self, proxy_name: str) -> None:
        """Fail a proxy (availability experiments)."""
        self.directory.mark_down(proxy_name)

    def mark_proxy_up(self, proxy_name: str) -> None:
        """Recover a proxy."""
        self.directory.mark_up(proxy_name)

    # -- querying ----------------------------------------------------------------

    def query(self, query: Query) -> QueryAnswer:
        """Route and answer one global query."""
        self.routed_queries += 1
        assignments = self.index.lookup(float(query.sensor))
        if not assignments:
            self.unroutable_queries += 1
            return QueryAnswer(
                query=query, value=None, source=AnswerSource.FAILED, latency_s=0.0
            )
        routing_latency = (1 + self.index.mean_routing_hops) * HOP_LATENCY_S

        primary_name = assignments[0].proxy
        primary = self.directory.proxy(primary_name)
        extra_latency = primary.response_latency_s
        if not primary.alive:
            best = self.directory.best_server(query.sensor)
            if best is None:
                self.unroutable_queries += 1
                return QueryAnswer(
                    query=query,
                    value=None,
                    source=AnswerSource.FAILED,
                    latency_s=routing_latency,
                )
            self.rerouted_queries += 1
            # The replica serves a copy of the failed proxy's cache and
            # models; in-simulation that state lives in the primary cell
            # object, so answer from it at the replica's latency.
            extra_latency = best.response_latency_s
        cell = self._cells[primary_name]
        local = self._rewrite(query, cell)
        answer = cell.proxy.process_query(local)
        return QueryAnswer(
            query=query,
            value=answer.value,
            source=answer.source,
            latency_s=answer.latency_s + routing_latency + extra_latency,
            believed_std=answer.believed_std,
            sensor_energy_j=answer.sensor_energy_j,
            pulled_bytes=answer.pulled_bytes,
        )

    @staticmethod
    def _rewrite(query: Query, cell: ProxyCell) -> Query:
        """Rewrite a global query into the cell's local sensor numbering."""
        return dataclasses.replace(query, sensor=cell.to_local(query.sensor))

    # -- ordered cross-proxy view ---------------------------------------------------

    def ordered_view(
        self, start: float, end: float
    ) -> list[tuple[float, int, float]]:
        """Temporally ordered ``(corrected_time, global_sensor, value)``
        tuples of all *actual* cached data across proxies in ``[start, end]``.

        This is the "single temporally ordered view of detections across
        distributed proxies" of Section 5; each proxy corrects its
        sensors' timestamps into the proxy frame before merging.  For the
        epoch-driven push protocol that correction already happened at
        insert time — entries are stamped from the shared lockstep epoch
        counter, so their cached timestamps *are* proxy time and are
        merged as stored.  Cells declared ``sensor_stamped`` hold raw
        mote-clock stamps instead; those are corrected *per entry*: an
        entry tagged with a clock frame (the ``(rate, offset)`` fit
        captured when it was recorded — see :meth:`~repro.core.proxy.
        PrestoProxy.record_detection`) maps through exactly that frame,
        so later re-fits of a drifting clock never retroactively move
        old detections; untagged entries fall back to the proxy's
        current estimate (:meth:`~repro.core.proxy.PrestoProxy.
        corrected_time` — identity until a clock is fitted).  The cache
        is scanned over the *image* of ``[start, end]`` under the
        current fit in each sensor's own frame, so a detection whose
        raw stamp sits outside the window but whose corrected instant
        is inside cannot be missed (and vice versa).
        """
        merged: list[tuple[float, int, float]] = []
        for cell in self._cells.values():
            proxy = cell.proxy
            frames_in = getattr(proxy.cache, "frames_in", None)
            for local in range(proxy.n_sensors):
                global_id = cell.first_sensor + local
                if cell.sensor_stamped:
                    lo = proxy.sensor_frame_time(local, start)
                    hi = proxy.sensor_frame_time(local, end)
                    if hi < lo:
                        lo, hi = hi, lo
                else:
                    lo, hi = start, end
                frames = (
                    frames_in(local, lo, hi)
                    if cell.sensor_stamped and frames_in is not None
                    else None
                )
                for position, entry in enumerate(
                    proxy.cache.entries_in(local, lo, hi)
                ):
                    if not entry.is_actual:
                        continue
                    if not cell.sensor_stamped:
                        corrected = entry.timestamp
                    else:
                        frame = None if frames is None else frames[position]
                        if frame is not None and np.isfinite(frame).all():
                            corrected = (entry.timestamp - frame[1]) / frame[0]
                        else:
                            corrected = proxy.corrected_time(
                                local, entry.timestamp
                            )
                    merged.append((corrected, global_id, entry.value))
        merged.sort(key=lambda item: (item[0], item[1]))
        return merged

    @property
    def n_sensors(self) -> int:
        """Total sensors across all cells."""
        return sum(
            cell.last_sensor - cell.first_sensor + 1 for cell in self._cells.values()
        )
