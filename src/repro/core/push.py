"""The model-driven push protocol.

The heart of PRESTO (Section 2/3): the proxy fits a model, transmits its
parameters to the sensor, and from then on the *sensor* checks each reading
against the model, transmitting only on failure:

    sensor:  predicted = model.predict_next()
             if |reading - predicted| > delta: push(reading); observe(reading)
             else:                             observe(predicted)
    proxy:   on push:    observe(reading)   # same branch, same state
             on silence: observe(predicted)

Both sides advance the *same* model with the *same* values, so silence is
unambiguous ("the reading was within delta of what we both computed") and
the proxy's substituted series is exactly the sensor's.  Rare events are
caught by construction: any reading further than delta from the prediction
is pushed, no matter how unusual.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field

from repro.timeseries.base import TimeSeriesModel

_update_ids = itertools.count()


@dataclass(frozen=True)
class ModelUpdate:
    """Model parameters shipped proxy → sensor.

    The simulation passes the fitted model object; the wire cost charged to
    the radio is ``parameter_bytes`` — what a real deployment would send.

    ``activation_epoch`` makes the switchover race-free: both sides keep
    running the old model (or cold-start push-everything mode) until that
    epoch, so a slow LPL downlink cannot desynchronise the replicas.
    """

    model: TimeSeriesModel
    delta: float
    activation_epoch: int = 0
    update_id: int = field(default_factory=lambda: next(_update_ids))

    @property
    def parameter_bytes(self) -> int:
        """Bytes of model parameters on the wire."""
        return self.model.parameter_bytes + 4  # + delta


@dataclass(frozen=True)
class PushDecision:
    """Outcome of one sensor-side model check."""

    push: bool
    predicted: float
    error: float


class SensorModelChecker:
    """Sensor-side replica of the model, running the cheap check loop."""

    def __init__(self, update: ModelUpdate) -> None:
        self._model = copy.deepcopy(update.model)
        self._model.align_to_time(
            update.activation_epoch * self._model.sample_period_s
        )
        self.delta = float(update.delta)
        self.update_id = update.update_id
        self.checks = 0
        self.pushes = 0

    @property
    def check_cycles(self) -> float:
        """CPU cycles per verification (for the energy model)."""
        return self._model.check_cycles

    def process(self, value: float) -> PushDecision:
        """Check one reading; advances the replica identically to the proxy."""
        predicted = self._model.predict_next()
        error = abs(value - predicted)
        push = error > self.delta
        self._model.observe(value if push else predicted)
        self.checks += 1
        if push:
            self.pushes += 1
        return PushDecision(push=push, predicted=predicted, error=error)

    def advance_silent(self) -> float:
        """Advance one epoch with no reading (sensing dropout).

        The replica observes its own prediction — exactly the proxy
        tracker's :meth:`ProxyModelTracker.advance_silent` — so a missed
        sample keeps both sides in lockstep.  Returns the substituted value.
        """
        predicted = self._model.predict_next()
        self._model.observe(predicted)
        self.checks += 1
        return predicted

    @property
    def push_fraction(self) -> float:
        """Fraction of readings that failed the model so far."""
        if self.checks == 0:
            return 0.0
        return self.pushes / self.checks


class ProxyModelTracker:
    """Proxy-side replica of the same model for one sensor.

    ``advance_silent()`` substitutes the prediction for an epoch the sensor
    skipped; ``apply_push(value)`` consumes a pushed reading.  The sequence
    of calls must mirror the sensor's epochs, which the proxy guarantees by
    processing epochs in order (see :class:`repro.core.proxy.PrestoProxy`).
    """

    def __init__(self, update: ModelUpdate) -> None:
        self._model = copy.deepcopy(update.model)
        self._model.align_to_time(
            update.activation_epoch * self._model.sample_period_s
        )
        self.delta = float(update.delta)
        self.update_id = update.update_id
        self.substitutions = 0
        self.pushes_applied = 0

    def advance_silent(self) -> float:
        """Advance one epoch without a push; returns the substituted value."""
        predicted = self._model.predict_next()
        self._model.observe(predicted)
        self.substitutions += 1
        return predicted

    def apply_push(self, value: float) -> None:
        """Advance one epoch with the pushed reading."""
        self._model.observe(float(value))
        self.pushes_applied += 1

    def predicted_std(self) -> float:
        """One-step uncertainty of a substitution (model residual std)."""
        return self._model.residual_std

    def forecast_std(self, steps: int) -> float:
        """Uncertainty *steps* epochs past the last known state."""
        if steps <= 1:
            return self.predicted_std()
        try:
            forecast = self._model.forecast(steps)
            return float(forecast.std[-1])
        except (RuntimeError, ValueError):
            return self.predicted_std() * (steps ** 0.5)

    def forecast_value(self, steps: int) -> tuple[float, float]:
        """Mean and std *steps* epochs past the last known state.

        Used by wired replicas answering for a failed wireless proxy: the
        replicated model extrapolates from its last synchronised state
        without touching the tracker (the copy must stay frozen at sync
        time for repeated queries to agree).
        """
        if steps < 1:
            raise ValueError(f"need >= 1 forecast step, got {steps}")
        try:
            forecast = self._model.forecast(steps)
            return float(forecast.mean[-1]), float(forecast.std[-1])
        except (RuntimeError, ValueError):
            return (
                float(self._model.predict_next()),
                self.predicted_std() * (steps ** 0.5),
            )


def verify_replicas_in_sync(
    checker: SensorModelChecker, tracker: ProxyModelTracker
) -> bool:
    """Test hook: do the two replicas predict the same next value?"""
    return abs(checker._model.predict_next() - tracker._model.predict_next()) < 1e-9
