"""The proxy's summary cache.

"A central component of the sensor proxy is a summary cache of the data
from remote sensors ... the cached data is either a lossy view or a
higher-level semantic event-based view" (Section 3).  Entries carry their
*provenance* — an actual pushed reading, a model substitution, data pulled
from the archive — and a standard deviation quantifying how lossy the view
is at that instant.  The cache refines progressively: a pulled actual value
replaces the predicted entry that masked it.

Storage layout: the cache is *columnar*.  Each sensor's series lives in
four parallel NumPy arrays (timestamps / values / stds / source codes)
kept sorted by timestamp, with a lazy start offset so appends and
evictions are amortized O(1) and window reads are contiguous array views.
The row-oriented :class:`CacheEntry` remains the public unit of exchange;
:class:`ListSummaryCache` preserves the original ``list``-of-entries
implementation as the behavioural reference for equivalence tests and the
hot-path benchmark baseline.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass

import numpy as np


class EntrySource(enum.Enum):
    """Provenance of one cached value."""

    PUSHED = "pushed"          # sensor-reported (model failure or batch)
    PREDICTED = "predicted"    # model substitution (sensor stayed silent)
    PULLED = "pulled"          # fetched from the sensor archive on a miss


#: integer codes used in the columnar source array
PUSHED_CODE = 0
PREDICTED_CODE = 1
PULLED_CODE = 2

_CODE_OF_SOURCE = {
    EntrySource.PUSHED: PUSHED_CODE,
    EntrySource.PREDICTED: PREDICTED_CODE,
    EntrySource.PULLED: PULLED_CODE,
}
_SOURCE_OF_CODE = (EntrySource.PUSHED, EntrySource.PREDICTED, EntrySource.PULLED)


@dataclass(frozen=True)
class CacheEntry:
    """One (sensor, epoch) cache cell."""

    timestamp: float
    value: float
    std: float
    source: EntrySource

    @property
    def is_actual(self) -> bool:
        """Whether the value is sensor ground truth (vs a model guess)."""
        return self.source in (EntrySource.PUSHED, EntrySource.PULLED)


def _nearest_position(times: np.ndarray, timestamp: float, tolerance_s: float) -> int | None:
    """Index of the entry nearest *timestamp* within ±*tolerance_s*.

    Ties between the left and right neighbour resolve to the right one,
    matching the original bisect implementation.
    """
    n = times.size
    if n == 0:
        return None
    position = int(np.searchsorted(times, timestamp, side="left"))
    best: int | None = None
    best_gap = tolerance_s
    for candidate in (position - 1, position):
        if 0 <= candidate < n:
            gap = abs(float(times[candidate]) - timestamp)
            if gap <= best_gap:
                best_gap = gap
                best = candidate
    return best


@dataclass(frozen=True)
class CacheSnapshot:
    """An immutable columnar snapshot of one sensor's series.

    Produced by :meth:`SummaryCache.tail_snapshot` for replication: the
    arrays are owned copies, safe to ship to another proxy and to query
    repeatedly with identical answers.  Supports ``len``/indexing/iteration
    over :class:`CacheEntry` views for row-oriented consumers.
    """

    timestamps: np.ndarray
    values: np.ndarray
    stds: np.ndarray
    codes: np.ndarray

    def __len__(self) -> int:
        return int(self.timestamps.size)

    def __bool__(self) -> bool:
        return self.timestamps.size > 0

    def __getitem__(self, index: int) -> CacheEntry:
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(index)
        return CacheEntry(
            timestamp=float(self.timestamps[i]),
            value=float(self.values[i]),
            std=float(self.stds[i]),
            source=_SOURCE_OF_CODE[int(self.codes[i])],
        )

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def actual_mask(self) -> np.ndarray:
        """Boolean mask of entries holding sensor ground truth."""
        return self.codes != PREDICTED_CODE

    def window_slice(self, start: float, end: float) -> slice:
        """Index slice covering timestamps in ``[start, end]``."""
        lo = int(np.searchsorted(self.timestamps, start, side="left"))
        hi = int(np.searchsorted(self.timestamps, end, side="right"))
        return slice(lo, hi)

    def nearest(self, timestamp: float, tolerance_s: float) -> int | None:
        """Index of the entry nearest *timestamp* within tolerance, or None."""
        return _nearest_position(self.timestamps, timestamp, tolerance_s)


#: initial per-sensor array capacity (doubles as needed)
_MIN_CAPACITY = 64

# insert outcomes (internal)
_SKIPPED = 0     # degrade attempt: actual kept, prediction dropped
_REPLACED = 1    # same-instant overwrite, no provenance upgrade
_REFINED = 2     # prediction upgraded to an actual
_INSERTED = 3    # new timestamp


class _Column:
    """One sensor's sorted columnar store.

    Live data occupies ``[start, start + length)`` of four parallel arrays.
    Appends go at the physical end; evictions advance ``start`` without
    copying; the live region is compacted to the front (or the arrays
    doubled) only when the physical tail runs out — amortized O(1) per
    append.
    """

    __slots__ = ("times", "values", "stds", "codes", "frames", "start", "length")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        self.times = np.empty(capacity, dtype=np.float64)
        self.values = np.empty(capacity, dtype=np.float64)
        self.stds = np.empty(capacity, dtype=np.float64)
        self.codes = np.empty(capacity, dtype=np.int8)
        # (capacity, 2) clock-frame tags — (rate, offset) of the sync fit the
        # timestamp was stamped under, NaN rows for proxy-frame entries.
        # Allocated lazily: the epoch-driven push path never pays for it.
        self.frames: np.ndarray | None = None
        self.start = 0
        self.length = 0

    @property
    def end(self) -> int:
        return self.start + self.length

    def _arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return self.times, self.values, self.stds, self.codes

    def views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Live-region views (invalidated by the next write)."""
        live = slice(self.start, self.end)
        return self.times[live], self.values[live], self.stds[live], self.codes[live]

    def ensure_frames(self) -> np.ndarray:
        """The frame-tag array, allocating (all-NaN) on first use."""
        if self.frames is None:
            self.frames = np.full((self.times.size, 2), np.nan)
        return self.frames

    def reserve(self, extra: int) -> None:
        """Guarantee room for *extra* more entries at the physical end."""
        if self.end + extra <= self.times.size:
            return
        need = self.length + extra
        if need <= self.times.size:
            # Compact: move the live region back to the front.
            live = slice(self.start, self.end)
            for array in self._arrays():
                array[: self.length] = array[live].copy()
            if self.frames is not None:
                self.frames[: self.length] = self.frames[live].copy()
        else:
            capacity = max(2 * self.times.size, need)
            old = self._arrays()
            live = slice(self.start, self.end)
            self.times = np.empty(capacity, dtype=np.float64)
            self.values = np.empty(capacity, dtype=np.float64)
            self.stds = np.empty(capacity, dtype=np.float64)
            self.codes = np.empty(capacity, dtype=np.int8)
            for new, previous in zip(self._arrays(), old):
                new[: self.length] = previous[live]
            if self.frames is not None:
                grown = np.full((capacity, 2), np.nan)
                grown[: self.length] = self.frames[live]
                self.frames = grown
        self.start = 0

    def _tag_frame(self, position: int, frame: tuple[float, float] | None) -> None:
        """Stamp (or clear) the frame tag of the cell at *position*."""
        if frame is not None:
            self.ensure_frames()[position] = frame
        elif self.frames is not None:
            self.frames[position] = np.nan

    def insert_one(
        self,
        timestamp: float,
        value: float,
        std: float,
        code: int,
        frame: tuple[float, float] | None = None,
    ) -> int:
        """Insert or refine one cell; returns the outcome code."""
        times = self.times
        lo, hi = self.start, self.end
        relative = int(np.searchsorted(times[lo:hi], timestamp, side="left"))
        position = lo + relative
        if position < hi and times[position] == timestamp:
            existing_actual = self.codes[position] != PREDICTED_CODE
            new_actual = code != PREDICTED_CODE
            if existing_actual and not new_actual:
                return _SKIPPED  # never degrade actual data to a guess
            self.values[position] = value
            self.stds[position] = std
            self.codes[position] = code
            self._tag_frame(position, frame)
            return _REFINED if not existing_actual and new_actual else _REPLACED
        self.reserve(1)
        position = self.start + relative
        hi = self.end
        if position < hi:  # backfill: shift the tail right by one
            for array in self._arrays():
                array[position + 1 : hi + 1] = array[position:hi]
            if self.frames is not None:
                self.frames[position + 1 : hi + 1] = self.frames[position:hi]
        self.times[position] = timestamp
        self.values[position] = value
        self.stds[position] = std
        self.codes[position] = code
        self._tag_frame(position, frame)
        self.length += 1
        return _INSERTED

    def evict_front(self, count: int) -> None:
        """Drop the *count* oldest entries (lazy — no copying)."""
        self.start += count
        self.length -= count

    def merge_batch(
        self,
        timestamps: np.ndarray,
        values: np.ndarray,
        stds: np.ndarray,
        code: int,
    ) -> tuple[int, int]:
        """Merge a sorted, deduplicated batch; returns (inserted, refined).

        Exact-timestamp collisions follow the single-insert refinement
        policy; new timestamps are merged in one vectorized pass.
        """
        times, vals, sds, codes = self.views()
        n = times.size
        positions = np.searchsorted(times, timestamps, side="left")
        in_range = positions < n
        matched = np.zeros(timestamps.size, dtype=bool)
        matched[in_range] = (
            times[positions[in_range]] == timestamps[in_range]
        )
        refined = 0
        if matched.any():
            hit = positions[matched]
            new_actual = code != PREDICTED_CODE
            existing_actual = codes[hit] != PREDICTED_CODE
            writable = ~(existing_actual & (not new_actual))
            target = hit[writable]
            vals[target] = values[matched][writable]
            sds[target] = stds[matched][writable]
            refined = int((~existing_actual[writable]).sum()) if new_actual else 0
            codes[target] = code
            if self.frames is not None:
                # batch values are proxy-stamped: the overwrite clears any tag
                self.frames[self.start + target] = np.nan
        fresh = ~matched
        inserted = int(fresh.sum())
        if inserted:
            new_times = timestamps[fresh]
            self.reserve(inserted)
            times, vals, sds, codes = self.views()
            merged = self.length + inserted
            place = np.searchsorted(times, new_times, side="left") + np.arange(
                inserted
            )
            keep = np.ones(merged, dtype=bool)
            keep[place] = False
            new_codes = np.full(inserted, code, dtype=np.int8)
            lo = self.start
            for array, column, batch in (
                (self.times, times, new_times),
                (self.values, vals, values[fresh]),
                (self.stds, sds, stds[fresh]),
                (self.codes, codes, new_codes),
            ):
                merged_column = np.empty(merged, dtype=array.dtype)
                merged_column[keep] = column
                merged_column[place] = batch
                array[lo : lo + merged] = merged_column
            if self.frames is not None:
                # keep existing tags aligned; fresh batch rows stay untagged
                merged_frames = np.full((merged, 2), np.nan)
                merged_frames[keep] = self.frames[lo : lo + self.length]
                self.frames[lo : lo + merged] = merged_frames
            self.length = merged
        return inserted, refined


class SummaryCache:
    """Per-sensor time-ordered cache with bounded footprint.

    Entries are appended mostly in time order (pushes/predictions advance
    monotonically); pulls may backfill, handled by searchsorted insertion.
    When a sensor's series exceeds ``max_entries_per_sensor``, the oldest
    entries are evicted — the archive at the sensor remains the system of
    record for deep history.
    """

    def __init__(self, max_entries_per_sensor: int = 20_000) -> None:
        if max_entries_per_sensor < 16:
            raise ValueError(
                f"cache too small to be useful: {max_entries_per_sensor}"
            )
        self.max_entries_per_sensor = int(max_entries_per_sensor)
        self._columns: dict[int, _Column] = {}
        self.insertions = 0
        self.refinements = 0
        self.evictions = 0

    def _column(self, sensor: int) -> _Column | None:
        column = self._columns.get(sensor)
        if column is None or column.length == 0:
            return None
        return column

    def _entry_from(self, column: _Column, position: int) -> CacheEntry:
        i = column.start + position
        return CacheEntry(
            timestamp=float(column.times[i]),
            value=float(column.values[i]),
            std=float(column.stds[i]),
            source=_SOURCE_OF_CODE[int(column.codes[i])],
        )

    # -- writes ---------------------------------------------------------------

    def insert(
        self,
        sensor: int,
        entry: CacheEntry,
        frame: tuple[float, float] | None = None,
    ) -> None:
        """Insert or refine the cell at ``entry.timestamp``.

        An actual value always replaces a predicted one at the same instant
        (progressive refinement); a prediction never overwrites an actual.

        *frame* optionally tags the entry with the ``(rate, offset)`` clock
        map its timestamp was stamped under (``local = rate * true +
        offset``), letting readers correct it with the sync fit that was
        current at insert time rather than whatever fit exists when the
        entry is eventually read.  Untagged entries are proxy-frame.
        """
        if frame is not None:
            rate, offset = float(frame[0]), float(frame[1])
            if not (np.isfinite(rate) and np.isfinite(offset)) or rate == 0.0:
                raise ValueError(f"degenerate clock frame {frame!r}")
            frame = (rate, offset)
        column = self._columns.get(sensor)
        if column is None:
            column = self._columns[sensor] = _Column()
        outcome = column.insert_one(
            entry.timestamp,
            entry.value,
            entry.std,
            _CODE_OF_SOURCE[entry.source],
            frame=frame,
        )
        if outcome == _REFINED:
            self.refinements += 1
        elif outcome == _INSERTED:
            self.insertions += 1
            if column.length > self.max_entries_per_sensor:
                column.evict_front(1)
                self.evictions += 1

    def insert_batch(
        self,
        sensor: int,
        timestamps: np.ndarray,
        values: np.ndarray,
        stds: np.ndarray | float,
        source: EntrySource,
    ) -> int:
        """Insert many same-provenance cells in one vectorized merge.

        Equivalent to inserting each cell individually (duplicates within
        the batch keep the last value; collisions with cached cells follow
        the refinement policy; overflow evicts the oldest cells), but with
        one searchsorted merge instead of per-entry bisect.  Returns the
        number of genuinely new timestamps.
        """
        timestamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if timestamps.size == 0:
            return 0
        if np.isscalar(stds) or getattr(stds, "ndim", 1) == 0:
            stds = np.full(timestamps.size, float(stds), dtype=np.float64)
        else:
            stds = np.ascontiguousarray(stds, dtype=np.float64)
        order = np.argsort(timestamps, kind="stable")
        timestamps = timestamps[order]
        values = values[order]
        stds = stds[order]
        # Deduplicate within the batch: the last occurrence wins, exactly as
        # sequential same-source inserts would resolve it.
        if timestamps.size > 1:
            last = np.ones(timestamps.size, dtype=bool)
            last[:-1] = timestamps[1:] != timestamps[:-1]
            timestamps, values, stds = timestamps[last], values[last], stds[last]
        column = self._columns.get(sensor)
        if column is None:
            column = self._columns[sensor] = _Column(
                max(_MIN_CAPACITY, 2 * timestamps.size)
            )
        inserted, refined = column.merge_batch(
            timestamps, values, stds, _CODE_OF_SOURCE[source]
        )
        self.insertions += inserted
        self.refinements += refined
        overflow = column.length - self.max_entries_per_sensor
        if overflow > 0:
            column.evict_front(overflow)
            self.evictions += overflow
        return inserted

    # -- reads ------------------------------------------------------------------

    def entry_at(
        self, sensor: int, timestamp: float, tolerance_s: float
    ) -> CacheEntry | None:
        """Entry nearest *timestamp* within ±*tolerance_s*, or None."""
        column = self._column(sensor)
        if column is None:
            return None
        times = column.times[column.start : column.end]
        position = _nearest_position(times, timestamp, tolerance_s)
        if position is None:
            return None
        return self._entry_from(column, position)

    def actual_value_at(
        self, sensor: int, timestamp: float, tolerance_s: float
    ) -> float | None:
        """Value of the nearest entry within tolerance, if it is actual.

        Same candidate selection as :meth:`entry_at` — the nearest entry of
        *any* provenance is picked first, then discarded unless it holds
        ground truth — without materializing a :class:`CacheEntry`.
        """
        column = self._column(sensor)
        if column is None:
            return None
        times, values, _, codes = column.views()
        position = _nearest_position(times, timestamp, tolerance_s)
        if position is None or codes[position] == PREDICTED_CODE:
            return None
        return float(values[position])

    def arrays_in(
        self, sensor: int, start: float, end: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Columnar views of ``[start, end]``: (times, values, stds, codes).

        The views alias cache storage and are invalidated by the next
        write to this sensor — consume (or copy) them immediately.
        """
        column = self._column(sensor)
        if column is None:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty, empty, np.empty(0, dtype=np.int8)
        times, values, stds, codes = column.views()
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="right"))
        window = slice(lo, hi)
        return times[window], values[window], stds[window], codes[window]

    def entries_in(
        self, sensor: int, start: float, end: float
    ) -> list[CacheEntry]:
        """All entries with timestamps in ``[start, end]``, time order."""
        times, values, stds, codes = self.arrays_in(sensor, start, end)
        return [
            CacheEntry(
                timestamp=float(times[i]),
                value=float(values[i]),
                std=float(stds[i]),
                source=_SOURCE_OF_CODE[int(codes[i])],
            )
            for i in range(times.size)
        ]

    def frames_in(
        self, sensor: int, start: float, end: float
    ) -> np.ndarray | None:
        """Clock-frame tags of the ``[start, end]`` window, or None.

        Row ``i`` is the ``(rate, offset)`` tag of the ``i``-th entry
        :meth:`entries_in` returns for the same window; NaN rows mark
        untagged (proxy-frame) entries.  ``None`` short-circuits the whole
        sensor when no entry was ever tagged.  The view aliases cache
        storage — consume it before the next write.
        """
        column = self._column(sensor)
        if column is None or column.frames is None:
            return None
        times = column.times[column.start : column.end]
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="right"))
        return column.frames[column.start + lo : column.start + hi]

    def values_on_grid(
        self, sensor: int, grid_times: np.ndarray, tolerance_s: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-entry values at each grid instant, in one pass.

        Returns ``(values, valid)`` where ``valid[i]`` marks grid points
        with an entry within ±*tolerance_s*; invalid points hold NaN.
        Candidate selection matches :meth:`entry_at` exactly (nearest
        neighbour, ties to the later entry) but costs one searchsorted
        over the whole grid instead of a bisect per point.
        """
        grid_times = np.asarray(grid_times, dtype=np.float64)
        out = np.full(grid_times.size, np.nan)
        column = self._column(sensor)
        if column is None:
            return out, np.zeros(grid_times.size, dtype=bool)
        times, values, _, _ = column.views()
        n = times.size
        positions = np.searchsorted(times, grid_times, side="left")
        left = np.clip(positions - 1, 0, n - 1)
        right = np.clip(positions, 0, n - 1)
        gap_left = np.abs(grid_times - times[left])
        gap_right = np.abs(grid_times - times[right])
        take_right = gap_right <= gap_left
        chosen = np.where(take_right, right, left)
        gap = np.where(take_right, gap_right, gap_left)
        valid = gap <= tolerance_s
        out[valid] = values[chosen[valid]]
        return out, valid

    def tail(self, sensor: int, count: int) -> list[CacheEntry]:
        """The newest *count* entries for *sensor* (the replication hot set)."""
        if count < 1:
            raise ValueError(f"need a positive tail size, got {count}")
        column = self._column(sensor)
        if column is None:
            return []
        first = max(column.length - count, 0)
        return [self._entry_from(column, i) for i in range(first, column.length)]

    def tail_snapshot(self, sensor: int, count: int) -> CacheSnapshot:
        """Columnar copy of the newest *count* entries (for replication)."""
        if count < 1:
            raise ValueError(f"need a positive tail size, got {count}")
        column = self._column(sensor)
        if column is None:
            empty = np.empty(0, dtype=np.float64)
            return CacheSnapshot(
                timestamps=empty,
                values=empty.copy(),
                stds=empty.copy(),
                codes=np.empty(0, dtype=np.int8),
            )
        times, values, stds, codes = column.views()
        tail = slice(max(times.size - count, 0), times.size)
        return CacheSnapshot(
            timestamps=times[tail].copy(),
            values=values[tail].copy(),
            stds=stds[tail].copy(),
            codes=codes[tail].copy(),
        )

    def latest(self, sensor: int) -> CacheEntry | None:
        """Most recent entry for *sensor*."""
        column = self._column(sensor)
        if column is None:
            return None
        return self._entry_from(column, column.length - 1)

    def latest_actual(self, sensor: int) -> CacheEntry | None:
        """Most recent entry holding sensor ground truth."""
        column = self._column(sensor)
        if column is None:
            return None
        codes = column.codes[column.start : column.end]
        actual = np.flatnonzero(codes != PREDICTED_CODE)
        if actual.size == 0:
            return None
        return self._entry_from(column, int(actual[-1]))

    def coverage_fraction(
        self, sensor: int, start: float, end: float, sample_period_s: float
    ) -> float:
        """Fraction of expected epochs in ``[start, end]`` present.

        The expected count truncates with an epsilon, not bare ``int()``: a
        window spanning an exact multiple of the period whose float ratio
        lands at ``k - ε`` must still expect ``k + 1`` epochs, or full
        coverage with one cell genuinely missing silently reads as 100%.
        (Plain rounding would instead over-expect on genuinely fractional
        windows — e.g. 6.6 periods can only ever hold 7 grid epochs.)
        """
        if end < start:
            raise ValueError(f"empty window [{start}, {end}]")
        expected = max(int((end - start) / sample_period_s + 1e-9) + 1, 1)
        column = self._column(sensor)
        if column is None:
            return 0.0
        times = column.times[column.start : column.end]
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="right"))
        return min((hi - lo) / expected, 1.0)

    def size(self, sensor: int | None = None) -> int:
        """Entry count for one sensor, or total."""
        if sensor is not None:
            column = self._columns.get(sensor)
            return column.length if column is not None else 0
        return sum(column.length for column in self._columns.values())

    @property
    def sensors(self) -> list[int]:
        """Sensors with at least one cached entry."""
        return [s for s, column in self._columns.items() if column.length]


class ListSummaryCache:
    """The original list-of-entries implementation, kept as reference.

    Bit-for-bit the pre-columnar :class:`SummaryCache` (plus the same
    coverage rounding fix): the equivalence property test drives both
    implementations through identical operation streams, and the hot-path
    benchmark uses this as its baseline.
    """

    def __init__(self, max_entries_per_sensor: int = 20_000) -> None:
        if max_entries_per_sensor < 16:
            raise ValueError(
                f"cache too small to be useful: {max_entries_per_sensor}"
            )
        self.max_entries_per_sensor = int(max_entries_per_sensor)
        self._times: dict[int, list[float]] = {}
        self._entries: dict[int, list[CacheEntry]] = {}
        self._frames: dict[int, list[tuple[float, float] | None]] = {}
        self.insertions = 0
        self.refinements = 0
        self.evictions = 0

    # -- writes ---------------------------------------------------------------

    def insert(
        self,
        sensor: int,
        entry: CacheEntry,
        frame: tuple[float, float] | None = None,
    ) -> None:
        """Insert or refine the cell at ``entry.timestamp``."""
        if frame is not None:
            frame = (float(frame[0]), float(frame[1]))
        times = self._times.setdefault(sensor, [])
        entries = self._entries.setdefault(sensor, [])
        frames = self._frames.setdefault(sensor, [])
        position = bisect.bisect_left(times, entry.timestamp)
        if position < len(times) and times[position] == entry.timestamp:
            existing = entries[position]
            if existing.is_actual and not entry.is_actual:
                return  # never degrade actual data to a guess
            if not existing.is_actual and entry.is_actual:
                self.refinements += 1
            entries[position] = entry
            frames[position] = frame
            return
        times.insert(position, entry.timestamp)
        entries.insert(position, entry)
        frames.insert(position, frame)
        self.insertions += 1
        if len(times) > self.max_entries_per_sensor:
            del times[0]
            del entries[0]
            del frames[0]
            self.evictions += 1

    # -- reads ------------------------------------------------------------------

    def entry_at(
        self, sensor: int, timestamp: float, tolerance_s: float
    ) -> CacheEntry | None:
        """Entry nearest *timestamp* within ±*tolerance_s*, or None."""
        times = self._times.get(sensor)
        if not times:
            return None
        position = bisect.bisect_left(times, timestamp)
        best: CacheEntry | None = None
        best_gap = tolerance_s
        for candidate in (position - 1, position):
            if 0 <= candidate < len(times):
                gap = abs(times[candidate] - timestamp)
                if gap <= best_gap:
                    best_gap = gap
                    best = self._entries[sensor][candidate]
        return best

    def entries_in(
        self, sensor: int, start: float, end: float
    ) -> list[CacheEntry]:
        """All entries with timestamps in ``[start, end]``, time order."""
        times = self._times.get(sensor)
        if not times:
            return []
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, end)
        return self._entries[sensor][lo:hi]

    def frames_in(
        self, sensor: int, start: float, end: float
    ) -> np.ndarray | None:
        """Clock-frame tags aligned with :meth:`entries_in`, or None."""
        times = self._times.get(sensor)
        if not times or all(f is None for f in self._frames.get(sensor, [])):
            return None
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, end)
        return np.array(
            [
                (np.nan, np.nan) if frame is None else frame
                for frame in self._frames[sensor][lo:hi]
            ],
            dtype=np.float64,
        ).reshape(hi - lo, 2)

    def tail(self, sensor: int, count: int) -> list[CacheEntry]:
        """The newest *count* entries for *sensor*."""
        if count < 1:
            raise ValueError(f"need a positive tail size, got {count}")
        return list(self._entries.get(sensor, [])[-count:])

    def latest(self, sensor: int) -> CacheEntry | None:
        """Most recent entry for *sensor*."""
        entries = self._entries.get(sensor)
        return entries[-1] if entries else None

    def latest_actual(self, sensor: int) -> CacheEntry | None:
        """Most recent entry holding sensor ground truth."""
        entries = self._entries.get(sensor)
        if not entries:
            return None
        for entry in reversed(entries):
            if entry.is_actual:
                return entry
        return None

    def coverage_fraction(
        self, sensor: int, start: float, end: float, sample_period_s: float
    ) -> float:
        """Fraction of expected epochs in ``[start, end]`` present."""
        if end < start:
            raise ValueError(f"empty window [{start}, {end}]")
        expected = max(int((end - start) / sample_period_s + 1e-9) + 1, 1)
        return min(len(self.entries_in(sensor, start, end)) / expected, 1.0)

    def size(self, sensor: int | None = None) -> int:
        """Entry count for one sensor, or total."""
        if sensor is not None:
            return len(self._entries.get(sensor, []))
        return sum(len(v) for v in self._entries.values())

    @property
    def sensors(self) -> list[int]:
        """Sensors with at least one cached entry."""
        return [s for s, v in self._entries.items() if v]
