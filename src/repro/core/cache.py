"""The proxy's summary cache.

"A central component of the sensor proxy is a summary cache of the data
from remote sensors ... the cached data is either a lossy view or a
higher-level semantic event-based view" (Section 3).  Entries carry their
*provenance* — an actual pushed reading, a model substitution, data pulled
from the archive — and a standard deviation quantifying how lossy the view
is at that instant.  The cache refines progressively: a pulled actual value
replaces the predicted entry that masked it.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass


class EntrySource(enum.Enum):
    """Provenance of one cached value."""

    PUSHED = "pushed"          # sensor-reported (model failure or batch)
    PREDICTED = "predicted"    # model substitution (sensor stayed silent)
    PULLED = "pulled"          # fetched from the sensor archive on a miss


@dataclass(frozen=True)
class CacheEntry:
    """One (sensor, epoch) cache cell."""

    timestamp: float
    value: float
    std: float
    source: EntrySource

    @property
    def is_actual(self) -> bool:
        """Whether the value is sensor ground truth (vs a model guess)."""
        return self.source in (EntrySource.PUSHED, EntrySource.PULLED)


class SummaryCache:
    """Per-sensor time-ordered cache with bounded footprint.

    Entries are appended mostly in time order (pushes/predictions advance
    monotonically); pulls may backfill, handled by bisect insertion.  When a
    sensor's series exceeds ``max_entries_per_sensor``, the oldest entries
    are evicted — the archive at the sensor remains the system of record for
    deep history.
    """

    def __init__(self, max_entries_per_sensor: int = 20_000) -> None:
        if max_entries_per_sensor < 16:
            raise ValueError(
                f"cache too small to be useful: {max_entries_per_sensor}"
            )
        self.max_entries_per_sensor = int(max_entries_per_sensor)
        self._times: dict[int, list[float]] = {}
        self._entries: dict[int, list[CacheEntry]] = {}
        self.insertions = 0
        self.refinements = 0
        self.evictions = 0

    # -- writes ---------------------------------------------------------------

    def insert(self, sensor: int, entry: CacheEntry) -> None:
        """Insert or refine the cell at ``entry.timestamp``.

        An actual value always replaces a predicted one at the same instant
        (progressive refinement); a prediction never overwrites an actual.
        """
        times = self._times.setdefault(sensor, [])
        entries = self._entries.setdefault(sensor, [])
        position = bisect.bisect_left(times, entry.timestamp)
        if position < len(times) and times[position] == entry.timestamp:
            existing = entries[position]
            if existing.is_actual and not entry.is_actual:
                return  # never degrade actual data to a guess
            if not existing.is_actual and entry.is_actual:
                self.refinements += 1
            entries[position] = entry
            return
        times.insert(position, entry.timestamp)
        entries.insert(position, entry)
        self.insertions += 1
        if len(times) > self.max_entries_per_sensor:
            del times[0]
            del entries[0]
            self.evictions += 1

    # -- reads ------------------------------------------------------------------

    def entry_at(
        self, sensor: int, timestamp: float, tolerance_s: float
    ) -> CacheEntry | None:
        """Entry nearest *timestamp* within ±*tolerance_s*, or None."""
        times = self._times.get(sensor)
        if not times:
            return None
        position = bisect.bisect_left(times, timestamp)
        best: CacheEntry | None = None
        best_gap = tolerance_s
        for candidate in (position - 1, position):
            if 0 <= candidate < len(times):
                gap = abs(times[candidate] - timestamp)
                if gap <= best_gap:
                    best_gap = gap
                    best = self._entries[sensor][candidate]
        return best

    def entries_in(
        self, sensor: int, start: float, end: float
    ) -> list[CacheEntry]:
        """All entries with timestamps in ``[start, end]``, time order."""
        times = self._times.get(sensor)
        if not times:
            return []
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, end)
        return self._entries[sensor][lo:hi]

    def tail(self, sensor: int, count: int) -> list[CacheEntry]:
        """The newest *count* entries for *sensor* (the replication hot set)."""
        if count < 1:
            raise ValueError(f"need a positive tail size, got {count}")
        return list(self._entries.get(sensor, [])[-count:])

    def latest(self, sensor: int) -> CacheEntry | None:
        """Most recent entry for *sensor*."""
        entries = self._entries.get(sensor)
        return entries[-1] if entries else None

    def latest_actual(self, sensor: int) -> CacheEntry | None:
        """Most recent entry holding sensor ground truth."""
        entries = self._entries.get(sensor)
        if not entries:
            return None
        for entry in reversed(entries):
            if entry.is_actual:
                return entry
        return None

    def coverage_fraction(
        self, sensor: int, start: float, end: float, sample_period_s: float
    ) -> float:
        """Fraction of expected epochs in ``[start, end]`` present."""
        if end < start:
            raise ValueError(f"empty window [{start}, {end}]")
        expected = max(int((end - start) / sample_period_s) + 1, 1)
        return min(len(self.entries_in(sensor, start, end)) / expected, 1.0)

    def size(self, sensor: int | None = None) -> int:
        """Entry count for one sensor, or total."""
        if sensor is not None:
            return len(self._entries.get(sensor, []))
        return sum(len(v) for v in self._entries.values())

    @property
    def sensors(self) -> list[int]:
        """Sensors with at least one cached entry."""
        return [s for s, v in self._entries.items() if v]
