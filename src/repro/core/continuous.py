"""Continuous (standing) queries — the extension Section 2 reserves.

"Although the PRESTO architecture does not preclude continual queries, in
this paper, we focus on ... one-time queries."  This module supplies the
missing piece: users register *standing* predicates ("notify me when sensor
3 exceeds 30 °C", "when any reading moves more than 2° in an epoch") and
the proxy evaluates them against every cache update — pushed readings,
batch deliveries and model substitutions alike.

The design exploits the push protocol: a threshold crossing is, almost by
definition, a model failure, so the triggering reading arrives as a push
within one epoch.  Registering a continuous query therefore also *narrows*
the sensor's push delta when the armed threshold sits close to the current
prediction — the query-sensor matching rule the NSDI successor ships.
"""

from __future__ import annotations

import bisect
import enum
import itertools
from dataclasses import dataclass, field

from repro.core.cache import CacheEntry, EntrySource

_query_ids = itertools.count()


class TriggerKind(enum.Enum):
    """Predicate families supported by the engine."""

    ABOVE = "above"          # value > threshold
    BELOW = "below"          # value < threshold
    DELTA = "delta"          # |value - previous| > threshold


@dataclass(frozen=True)
class ContinuousQuery:
    """A standing predicate over one sensor."""

    sensor: int
    kind: TriggerKind
    threshold: float
    min_interval_s: float = 0.0     # notification rate limit (0 = every hit)
    query_id: int = field(default_factory=lambda: next(_query_ids))

    def __post_init__(self) -> None:
        if self.kind is TriggerKind.DELTA and self.threshold <= 0:
            raise ValueError("delta triggers need a positive threshold")
        if self.min_interval_s < 0:
            raise ValueError("min interval must be >= 0")


@dataclass(frozen=True)
class Notification:
    """One firing of a continuous query."""

    query_id: int
    sensor: int
    timestamp: float
    value: float
    from_actual: bool        # triggered by sensor data vs a model substitution


class ContinuousQueryEngine:
    """Evaluates standing queries against the proxy's cache stream."""

    def __init__(self) -> None:
        self._queries: dict[int, ContinuousQuery] = {}
        self._last_value: dict[int, float] = {}
        self._latest_ts: dict[int, float] = {}
        self._fired_times: dict[int, list[float]] = {}  # sorted per query
        self.notifications: list[Notification] = []
        self.evaluations = 0
        self.stale_entries_skipped = 0

    def register(self, query: ContinuousQuery) -> int:
        """Arm a standing query; returns its id."""
        self._queries[query.query_id] = query
        return query.query_id

    def cancel(self, query_id: int) -> None:
        """Disarm a standing query."""
        self._queries.pop(query_id, None)

    @property
    def active(self) -> list[ContinuousQuery]:
        """Currently armed queries."""
        return list(self._queries.values())

    def armed_for(self, sensor: int) -> bool:
        """Whether any standing query watches *sensor*.

        Cheap guard for batched cache inserts: when nothing is armed the
        proxy may skip per-entry evaluation entirely.
        """
        return any(q.sensor == sensor for q in self._queries.values())

    def note_value(self, sensor: int, timestamp: float, value: float) -> None:
        """Record the sensor's newest value without evaluating queries.

        Keeps delta-trigger history warm across batched inserts that were
        not individually evaluated (no queries were armed at the time).
        Stale values — a pull backfilling history the engine has already
        moved past — are ignored, exactly as :meth:`on_entry` ignores
        them (noted values are always actual readings, so an equal
        timestamp refines the history just as it would in ``on_entry``).
        """
        latest = self._latest_ts.get(sensor)
        if latest is not None and timestamp < latest:
            return
        self._latest_ts[sensor] = timestamp
        self._last_value[sensor] = value

    def tightest_threshold_gap(self, sensor: int, current_value: float) -> float | None:
        """Distance from *current_value* to the nearest armed threshold.

        The matcher uses this to narrow the sensor's push delta when a
        standing query is about to fire ("arm the tripwire").  None when no
        level queries are armed on the sensor.
        """
        gaps = []
        for query in self._queries.values():
            if query.sensor != sensor:
                continue
            if query.kind in (TriggerKind.ABOVE, TriggerKind.BELOW):
                gaps.append(abs(query.threshold - current_value))
            else:
                gaps.append(query.threshold)
        return min(gaps) if gaps else None

    def on_entry(self, sensor: int, entry: CacheEntry) -> list[Notification]:
        """Feed one cache update; returns the notifications it fired.

        Staleness is decided by provenance, not timestamp alone:

        * **PULLED** entries strictly before the latest evaluated
          timestamp are proxy-initiated backfills of history the engine
          has already moved past — they neither fire (their crossing, if
          any, is stale news) nor clobber the delta-trigger history with
          an old value, both of which the pre-fix engine did (making
          DELTA triggers fire spuriously on the next fresh entry).  A
          pulled *actual* at exactly the latest timestamp is the
          progressive-refinement path (the pull replacing a prediction
          for the same instant) and is evaluated like any refinement.
        * **PREDICTED** entries are proxy-generated and in-order by
          construction; a duplicate at or before the latest timestamp is
          redundant and skipped.
        * **PUSHED** entries are *sensor-initiated* and always evaluated,
          however late they arrive: a push delayed past a query's silent
          advance (or a batched reading up to a batch interval old) is
          fresh information — the event the model failed to predict —
          and the paper's "rare events are never missed" guarantee
          forbids dropping it.  Late entries still never rewind the
          history: ``_last_value`` only advances on monotonically-new
          timestamps.
        """
        latest = self._latest_ts.get(sensor)
        fresh = latest is None or entry.timestamp > latest
        refinement = (
            latest is not None and entry.timestamp == latest and entry.is_actual
        )
        late_push = entry.source is EntrySource.PUSHED
        if not fresh and not refinement and not late_push:
            self.stale_entries_skipped += 1
            return []
        if fresh:
            self._latest_ts[sensor] = entry.timestamp
        fired: list[Notification] = []
        for query in self._queries.values():
            if query.sensor != sensor:
                continue
            self.evaluations += 1
            if not self._matches(query, sensor, entry):
                continue
            # Rate limit against the *nearest* prior firing in data time:
            # late pushes land before earlier firings (and between each
            # other), so a single forward anchor would let a delayed batch
            # fire once per entry.  min_interval_s=0 means "every hit".
            if self._rate_limited(query, entry.timestamp):
                continue
            notification = Notification(
                query_id=query.query_id,
                sensor=sensor,
                timestamp=entry.timestamp,
                value=entry.value,
                from_actual=entry.is_actual,
            )
            if query.min_interval_s > 0:
                # Unlimited queries never read the firing history — don't
                # grow it once per notification for nothing.
                bisect.insort(
                    self._fired_times.setdefault(query.query_id, []),
                    entry.timestamp,
                )
            self.notifications.append(notification)
            fired.append(notification)
        if fresh or refinement:
            self._last_value[sensor] = entry.value
        return fired

    def _rate_limited(self, query: ContinuousQuery, timestamp: float) -> bool:
        """Whether a firing at *timestamp* sits within ``min_interval_s``
        of the nearest existing firing of the same query."""
        if query.min_interval_s <= 0:
            return False
        times = self._fired_times.get(query.query_id)
        if not times:
            return False
        position = bisect.bisect_left(times, timestamp)
        gaps = (
            abs(timestamp - times[neighbour])
            for neighbour in (position - 1, position)
            if 0 <= neighbour < len(times)
        )
        return min(gaps) < query.min_interval_s

    def _matches(self, query: ContinuousQuery, sensor: int, entry: CacheEntry) -> bool:
        if query.kind is TriggerKind.ABOVE:
            return entry.value > query.threshold
        if query.kind is TriggerKind.BELOW:
            return entry.value < query.threshold
        previous = self._last_value.get(sensor)
        if previous is None:
            return False
        return abs(entry.value - previous) > query.threshold

    def notifications_for(self, query_id: int) -> list[Notification]:
        """All notifications a query has produced."""
        return [n for n in self.notifications if n.query_id == query_id]
