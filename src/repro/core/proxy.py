"""The PRESTO proxy.

Implements the full Section 3 component: the summary cache, the prediction
engine driving model-driven push, extrapolation-based cache-miss masking,
pull-on-miss against sensor archives, and query–sensor matching.

Epoch bookkeeping: sensor ``k`` samples at ``t = epoch * sample_period``.
The proxy advances each sensor's model tracker lazily — on pushes (up to the
pushed epoch) and at query time (up to the current epoch minus a small
grace period so an in-flight push is not preempted by a silent advance).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.cache import (
    PREDICTED_CODE,
    CacheEntry,
    CacheSnapshot,
    EntrySource,
    SummaryCache,
)
from repro.core.config import PrestoConfig
from repro.core.continuous import ContinuousQueryEngine
from repro.core.matching import QuerySensorMatcher, SensorOperatingPoint
from repro.core.prediction import Estimate, PredictionEngine
from repro.core.push import ModelUpdate, ProxyModelTracker
from repro.core.queries import AnswerSource, QueryAnswer
from repro.core.sensor import PULL_REQUEST_BYTES, PrestoSensor
from repro.energy.meter import EnergyMeter
from repro.radio.network import Network
from repro.radio.packet import Packet, PacketKind
from repro.simulation.kernel import Simulator
from repro.sync.protocol import TimeSyncProtocol
from repro.traces.workload import Query, QueryKind

#: epochs of slack between "model fitted" and "model active" so a slow LPL
#: downlink can never desynchronise the replicas
ACTIVATION_LAG_EPOCHS = 20

#: seconds of grace before silently advancing past an epoch whose push may
#: still be in flight
PUSH_GRACE_S = 1.0


@dataclass
class _SensorState:
    """Proxy-side bookkeeping for one sensor."""

    tracker: ProxyModelTracker | None = None
    pending: ModelUpdate | None = None
    last_epoch: int = -1           # newest epoch reflected in the cache
    pushes_received: int = 0
    batches_received: int = 0
    push_losses_detected: int = 0


@dataclass
class PullStats:
    """Counters for archive pulls."""

    requests: int = 0
    failures: int = 0
    bytes_pulled: int = 0


class PrestoProxy:
    """Tethered proxy managing a cell of PRESTO sensors."""

    def __init__(
        self,
        name: str,
        config: PrestoConfig,
        sim: Simulator,
        network: Network,
        meter: EnergyMeter,
        n_sensors: int,
    ) -> None:
        self.name = name
        self.config = config
        self.sim = sim
        self.network = network
        self.meter = meter
        self.n_sensors = int(n_sensors)
        self.cache = SummaryCache(config.cache_entries_per_sensor)
        self.engine = PredictionEngine(config, n_sensors)
        self.matcher = QuerySensorMatcher(config)
        self.sync = TimeSyncProtocol()
        self._states: dict[int, _SensorState] = {
            s: _SensorState() for s in range(self.n_sensors)
        }
        self._sensors: dict[int, PrestoSensor] = {}
        self.continuous = ContinuousQueryEngine()
        self.pull_stats = PullStats()
        self.queries_processed = 0
        self.answers: list[QueryAnswer] = []
        self._operating_points: dict[int, SensorOperatingPoint] = {}

    # -- wiring ---------------------------------------------------------------

    def register_sensor(self, sensor: PrestoSensor) -> None:
        """Attach a sensor object (for synchronous pull round-trips)."""
        self._sensors[sensor.sensor_id] = sensor

    def sensor_name(self, sensor_id: int) -> str:
        """Network name of a sensor."""
        return self._sensors[sensor_id].name

    def _sync_key(self, sensor: int) -> str:
        """The per-sensor key under which :attr:`sync` files its estimates.

        The push path and both time-frame corrections must key into the
        same estimate; the fallback covers sensors never registered as
        objects (pure routing tests).
        """
        return self._sensors[sensor].name if sensor in self._sensors else str(sensor)

    def corrected_time(self, sensor: int, timestamp: float) -> float:
        """Map a sensor-reported timestamp into the proxy's time frame.

        Identity until enough exchanges have been collected to fit the
        sensor's clock.
        """
        return self.sync.correct(self._sync_key(sensor), timestamp)

    def sensor_frame_time(self, sensor: int, timestamp: float) -> float:
        """Map a proxy-frame instant into *sensor*'s reported time frame.

        Inverse of :meth:`corrected_time` — lets callers translate a query
        window into the frame the sensor's raw timestamps live in.
        """
        return self.sync.project(self._sync_key(sensor), timestamp)

    def record_detection(
        self, sensor: int, raw_timestamp: float, value: float, std: float = 0.0
    ) -> CacheEntry:
        """Cache a detection stamped by the mote's own free-running clock.

        The entry is tagged with the sync frame in effect *now*, so the
        ordered cross-proxy view (:meth:`~repro.core.unified.UnifiedStore.
        ordered_view`) corrects it with the estimate contemporary with
        the detection — later exchanges that re-fit a drifting clock
        cannot retroactively move it.  Detections recorded before any
        fit exists stay untagged and fall back to the estimate current
        at read time.  Standing queries see the entry like any push.
        """
        entry = CacheEntry(
            timestamp=float(raw_timestamp),
            value=float(value),
            std=float(std),
            source=EntrySource.PUSHED,
        )
        estimate = self.sync.estimate_for(self._sync_key(sensor))
        frame = None if estimate is None else (estimate.rate, estimate.offset)
        self.cache.insert(sensor, entry, frame=frame)
        self.continuous.on_entry(sensor, entry)
        return entry

    def _insert_entry(self, sensor: int, entry: CacheEntry) -> None:
        """Insert into the cache and evaluate standing queries."""
        self.cache.insert(sensor, entry)
        self.continuous.on_entry(sensor, entry)

    def _insert_batch(
        self,
        sensor: int,
        times: np.ndarray,
        values: np.ndarray,
        std: float,
        source: EntrySource,
    ) -> None:
        """Insert many same-provenance entries, batched when possible.

        With standing queries armed on the sensor each entry must still be
        evaluated individually (notification order matters); otherwise the
        whole batch lands in one vectorized cache merge.
        """
        if self.continuous.armed_for(sensor):
            for timestamp, value in zip(times, values):
                self._insert_entry(
                    sensor,
                    CacheEntry(
                        timestamp=float(timestamp),
                        value=float(value),
                        std=std,
                        source=source,
                    ),
                )
            return
        self.cache.insert_batch(sensor, times, values, std, source)
        newest = int(np.argmax(times))
        self.continuous.note_value(sensor, float(times[newest]), float(values[newest]))

    # -- epoch arithmetic ----------------------------------------------------------

    def epoch_time(self, epoch: int) -> float:
        """Sampling instant of *epoch*."""
        return epoch * self.config.sample_period_s

    def current_epoch(self, grace_s: float = PUSH_GRACE_S) -> int:
        """Largest epoch safely assumed complete at the current time."""
        return int((self.sim.now - grace_s) // self.config.sample_period_s)

    # -- receive path ------------------------------------------------------------

    def on_receive(self, packet: Packet) -> None:
        """Network delivery callback (pushes, batches)."""
        if packet.kind is PacketKind.PUSH:
            self._handle_push(packet.payload)
        elif packet.kind is PacketKind.BATCH:
            self._handle_batch(packet.payload)
        else:
            raise ValueError(f"proxy cannot handle {packet.kind}")

    def _handle_push(self, payload: dict) -> None:
        sensor = int(payload["sensor"])
        epoch = int(payload["epoch"])
        value = float(payload["value"])
        state = self._states[sensor]
        self.sync.record_exchange(
            self._sync_key(sensor),
            proxy_time=self.epoch_time(epoch),
            sensor_local_time=float(payload["local_time"]),
        )
        self._activate_if_due(state, epoch)
        if state.tracker is None:
            # Cold start: cache the raw push, no model state to advance.
            state.last_epoch = max(state.last_epoch, epoch)
        elif epoch > state.last_epoch:
            # Substitute predictions for any silent epochs, then apply.
            self._advance_tracker(sensor, state, epoch - 1)
            state.tracker.apply_push(value)
            state.last_epoch = epoch
        else:
            # The tracker already advanced past this epoch (in-flight push
            # overtaken by a query's silent advance).  The cache entry below
            # still refines the guess; the replicas repair at the next refit.
            state.push_losses_detected += 1
        state.pushes_received += 1
        self._insert_entry(
            sensor,
            CacheEntry(
                timestamp=self.epoch_time(epoch),
                value=value,
                std=0.0,
                source=EntrySource.PUSHED,
            ),
        )

    def _handle_batch(self, payload: dict) -> None:
        sensor = int(payload["sensor"])
        state = self._states[sensor]
        quant = float(payload["quant_step"])
        std = float(quant / np.sqrt(12.0))  # quantisation noise
        times = np.asarray(payload["timestamps"], dtype=np.float64)
        values = np.asarray(payload["values"], dtype=np.float64)
        state.batches_received += 1
        if times.size == 0:
            return
        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        sorted_values = values[order]
        epochs = np.rint(sorted_times / self.config.sample_period_s).astype(np.int64)
        # With standing queries armed, every entry — silent-epoch
        # substitution or batched push — must reach the continuous engine
        # in time order, so the pushes are interleaved into the tracker
        # loop; otherwise the whole batch lands in one vectorized merge.
        armed = self.continuous.armed_for(sensor)
        # A batched reading is a push that arrived late: it must advance the
        # model tracker exactly as _handle_push would, or the tracker's
        # stream state desynchronises from last_epoch and every subsequent
        # apply_push/advance_silent operates on stale model state.
        for timestamp, epoch, value in zip(sorted_times, epochs, sorted_values):
            epoch = int(epoch)
            self._activate_if_due(state, epoch)
            if state.tracker is None:
                state.last_epoch = max(state.last_epoch, epoch)
            elif epoch > state.last_epoch:
                self._advance_tracker(sensor, state, epoch - 1)
                state.tracker.apply_push(float(value))
                state.last_epoch = epoch
            if armed:
                self._insert_entry(
                    sensor,
                    CacheEntry(
                        timestamp=float(timestamp),
                        value=float(value),
                        std=std,
                        source=EntrySource.PUSHED,
                    ),
                )
        if not armed:
            self.cache.insert_batch(sensor, times, values, std, EntrySource.PUSHED)
            self.continuous.note_value(
                sensor, float(sorted_times[-1]), float(sorted_values[-1])
            )

    # -- tracker management ---------------------------------------------------------

    def _activate_if_due(self, state: _SensorState, epoch: int) -> None:
        if state.pending is not None and epoch >= state.pending.activation_epoch:
            state.tracker = ProxyModelTracker(state.pending)
            state.last_epoch = max(state.last_epoch, state.pending.activation_epoch - 1)
            state.pending = None

    def _advance_tracker(self, sensor: int, state: _SensorState, upto_epoch: int) -> None:
        """Insert PREDICTED entries for silent epochs up to *upto_epoch*.

        The entry's std reflects the protocol's actual guarantee: a silent
        epoch means the reading was within *delta* of the substituted value,
        so the error bound is delta (≈ uniform, std = delta/√3), floored at
        the model's own one-step residual.
        """
        if state.tracker is None:
            return
        std = max(
            state.tracker.predicted_std(),
            state.tracker.delta / np.sqrt(3.0),
        )
        while state.last_epoch < upto_epoch:
            state.last_epoch += 1
            predicted = state.tracker.advance_silent()
            self._insert_entry(
                sensor,
                CacheEntry(
                    timestamp=self.epoch_time(state.last_epoch),
                    value=predicted,
                    std=max(std, 1e-6),
                    source=EntrySource.PREDICTED,
                ),
            )

    def advance_to_now(self, sensor: int) -> None:
        """Bring *sensor*'s cached view up to the current epoch."""
        state = self._states[sensor]
        target = self.current_epoch()
        self._activate_if_due(state, target)
        self._advance_tracker(sensor, state, target)

    # -- model refit & dissemination ---------------------------------------------------

    def refit_sensor(self, sensor: int) -> bool:
        """Refit and ship a model for *sensor* from its cached stream.

        Returns True when a model update was shipped and accepted.
        """
        all_times, all_values, _, _ = self.cache.arrays_in(sensor, 0.0, self.sim.now)
        if all_times.size < self.config.min_training_epochs:
            return False
        window = slice(max(all_times.size - self.config.training_epochs, 0), None)
        values = np.array(all_values[window])  # own the data: fit outlives the view
        times = np.array(all_times[window])
        point = self._operating_points.get(sensor)
        delta = point.push_delta if point is not None else self.config.push_delta
        update = self.engine.refit(sensor, values, times, delta=delta)
        if update is None:
            return False
        activation = self.current_epoch() + ACTIVATION_LAG_EPOCHS
        update = ModelUpdate(
            model=update.model, delta=update.delta, activation_epoch=activation
        )
        name = self.sensor_name(sensor)
        packet = Packet(
            kind=PacketKind.MODEL_UPDATE,
            src=self.name,
            dst=name,
            payload_bytes=update.parameter_bytes,
            payload=update,
        )
        outcome = self.network.send(packet, energy_category="radio.model_update")
        if not outcome.delivered:
            return False
        state = self._states[sensor]
        state.pending = update
        return True

    def refit_all(self) -> int:
        """Refit every sensor; returns how many updates shipped."""
        shipped = 0
        for sensor in range(self.n_sensors):
            if self.refit_sensor(sensor):
                shipped += 1
        # Refresh the spatial model from recent aligned actuals.
        self._refresh_spatial()
        return shipped

    def _refresh_spatial(self) -> None:
        if not self.config.spatial_extrapolation:
            return
        period = self.config.sample_period_s
        epochs = min(self.config.training_epochs, 1024)
        end_epoch = self.current_epoch()
        start_epoch = max(end_epoch - epochs, 0)
        if end_epoch - start_epoch < 64:
            return
        grid = np.arange(start_epoch, end_epoch, dtype=np.float64) * period
        matrix = np.full((grid.size, self.n_sensors), np.nan)
        for sensor in range(self.n_sensors):
            values, valid = self.cache.values_on_grid(sensor, grid, period / 2)
            matrix[valid, sensor] = values[valid]
        complete = ~np.isnan(matrix).any(axis=1)
        if complete.sum() >= 64:
            self.engine.fit_spatial(matrix[complete])

    def retune_sensor(self, sensor: int) -> SensorOperatingPoint | None:
        """Derive and ship an operating point from observed queries."""
        point = self.matcher.derive_operating_point()
        current = self._operating_points.get(sensor)
        if current == point:
            return None
        name = self.sensor_name(sensor)
        packet = Packet(
            kind=PacketKind.OPERATING_POINT,
            src=self.name,
            dst=name,
            payload_bytes=point.wire_bytes,
            payload=point,
        )
        outcome = self.network.send(packet, energy_category="radio.retune")
        if not outcome.delivered:
            return None
        self._operating_points[sensor] = point
        # Apply immediately on the sensor object as well (the event-path
        # delivery also happens; apply is idempotent).
        self._sensors[sensor].apply_operating_point(point)
        state = self._states[sensor]
        if state.tracker is not None:
            state.tracker.delta = point.push_delta
        return point

    # -- query processing ------------------------------------------------------------

    def process_query(self, query: Query) -> QueryAnswer:
        """Answer one query, trying cache → prediction → spatial → pull."""
        self.matcher.observe_query(query)
        self.queries_processed += 1
        if query.kind is QueryKind.NOW:
            answer = self._answer_now(query)
        elif query.kind is QueryKind.PAST_POINT:
            answer = self._answer_past_point(query)
        else:
            answer = self._answer_past_window(query)
        self.answers.append(answer)
        return answer

    def _confidence_ok(self, std: float, precision: float) -> bool:
        return std * self.config.confidence_z <= precision

    def _answer_now(self, query: Query) -> QueryAnswer:
        sensor = query.sensor
        self.advance_to_now(sensor)
        period = self.config.sample_period_s
        entry = self.cache.entry_at(sensor, query.arrival_time, tolerance_s=period)
        if entry is not None and entry.is_actual:
            return QueryAnswer(
                query=query,
                value=entry.value,
                source=AnswerSource.CACHE,
                latency_s=self.config.proxy_processing_s,
                believed_std=entry.std,
            )
        if entry is not None and self._confidence_ok(entry.std, query.precision):
            return QueryAnswer(
                query=query,
                value=entry.value,
                source=AnswerSource.PREDICTION,
                latency_s=self.config.proxy_processing_s,
                believed_std=entry.std,
            )
        estimate = self.engine.best_estimate(sensor, query.arrival_time, self.cache)
        if estimate is not None and self._confidence_ok(
            estimate[0].std, query.precision
        ):
            return self._answer_from_estimate(query, estimate)
        return self._pull_now(query, fallback=estimate)

    def _answer_from_estimate(
        self, query: Query, estimate: tuple[Estimate, str]
    ) -> QueryAnswer:
        value, method = estimate
        source = (
            AnswerSource.SPATIAL if method == "spatial" else AnswerSource.PREDICTION
        )
        return QueryAnswer(
            query=query,
            value=value.value,
            source=source,
            latency_s=self.config.proxy_processing_s,
            believed_std=value.std,
        )

    def _answer_past_point(self, query: Query) -> QueryAnswer:
        sensor = query.sensor
        target = min(query.target_time, self.sim.now)
        state = self._states[sensor]
        if target <= self.epoch_time(state.last_epoch):
            entry = self.cache.entry_at(
                sensor, target, tolerance_s=self.config.sample_period_s
            )
        else:
            self.advance_to_now(sensor)
            entry = self.cache.entry_at(
                sensor, target, tolerance_s=self.config.sample_period_s
            )
        if entry is not None and entry.is_actual:
            return QueryAnswer(
                query=query,
                value=entry.value,
                source=AnswerSource.CACHE,
                latency_s=self.config.proxy_processing_s,
                believed_std=entry.std,
            )
        if entry is not None and self._confidence_ok(entry.std, query.precision):
            return QueryAnswer(
                query=query,
                value=entry.value,
                source=AnswerSource.PREDICTION,
                latency_s=self.config.proxy_processing_s,
                believed_std=entry.std,
            )
        estimate = self.engine.best_estimate(sensor, target, self.cache)
        if estimate is not None and self._confidence_ok(
            estimate[0].std, query.precision
        ):
            return self._answer_from_estimate(query, estimate)
        period = self.config.sample_period_s
        return self._pull_past(
            query, target - period, target + period, fallback=estimate
        )

    def _answer_past_window(self, query: Query) -> QueryAnswer:
        sensor = query.sensor
        start = min(query.target_time, self.sim.now)
        end = min(start + query.window_s, self.sim.now)
        times, values, stds, codes = self.cache.arrays_in(sensor, start, end)
        coverage = self.cache.coverage_fraction(
            sensor, start, end, self.config.sample_period_s
        )
        worst_std = float(stds.max()) if stds.size else float("inf")
        if coverage >= 0.9 and self._confidence_ok(worst_std, query.precision):
            value = self._aggregate(values, query.aggregate)
            all_actual = bool((codes != PREDICTED_CODE).all())
            return QueryAnswer(
                query=query,
                value=value,
                source=AnswerSource.CACHE if all_actual else AnswerSource.PREDICTION,
                latency_s=self.config.proxy_processing_s,
                believed_std=worst_std if times.size else 0.0,
            )
        return self._pull_past(query, start, end, fallback=None)

    @staticmethod
    def _aggregate(values: np.ndarray, aggregate: str) -> float:
        if values.size == 0:
            raise ValueError("aggregate of empty window")
        if aggregate == "mean":
            return float(np.mean(values))
        if aggregate == "min":
            return float(np.min(values))
        if aggregate == "max":
            return float(np.max(values))
        raise ValueError(f"unknown aggregate {aggregate!r}")

    # -- pull paths --------------------------------------------------------------------

    def _pull_now(
        self, query: Query, fallback: tuple[Estimate, str] | None
    ) -> QueryAnswer:
        """Round-trip to the sensor for its current reading."""
        sensor_obj = self._sensors[query.sensor]
        before = sensor_obj.meter.total_j
        self.pull_stats.requests += 1
        mac = self.network.mac_for(sensor_obj.name)
        request = mac.send_downlink(PULL_REQUEST_BYTES, "radio.pull_request")
        if not request.delivered:
            return self._pull_failed(query, fallback, request.latency_s)
        reading = sensor_obj.current_reading()
        if reading is None:
            return self._pull_failed(query, fallback, request.latency_s)
        timestamp, value = reading
        reply = mac.send_uplink(8, "radio.pull_reply")
        if not reply.delivered:
            return self._pull_failed(
                query, fallback, request.latency_s + reply.latency_s
            )
        self._insert_entry(
            query.sensor,
            CacheEntry(
                timestamp=timestamp, value=value, std=0.0, source=EntrySource.PULLED
            ),
        )
        latency = (
            self.config.proxy_processing_s + request.latency_s + reply.latency_s
        )
        self.pull_stats.bytes_pulled += 8
        return QueryAnswer(
            query=query,
            value=value,
            source=AnswerSource.SENSOR_PULL,
            latency_s=latency,
            believed_std=0.0,
            sensor_energy_j=sensor_obj.meter.total_j - before,
            pulled_bytes=8,
        )

    def _pull_past(
        self,
        query: Query,
        start: float,
        end: float,
        fallback: tuple[Estimate, str] | None,
    ) -> QueryAnswer:
        """Round-trip to the sensor archive for a historical window."""
        sensor_obj = self._sensors[query.sensor]
        before = sensor_obj.meter.total_j
        self.pull_stats.requests += 1
        mac = self.network.mac_for(sensor_obj.name)
        request = mac.send_downlink(PULL_REQUEST_BYTES, "radio.pull_request")
        if not request.delivered:
            return self._pull_failed(query, fallback, request.latency_s)
        times, values, level, reply_bytes = sensor_obj.serve_pull(start, end)
        if values.size == 0:
            return self._pull_failed(query, fallback, request.latency_s)
        latency = self.config.proxy_processing_s + request.latency_s
        # Fragment the reply at the radio MTU; all fragments must arrive.
        mtu = self.config.node_profile.radio.max_payload_bytes
        remaining = reply_bytes
        while remaining > 0:
            chunk = min(remaining, mtu)
            fragment = mac.send_uplink(chunk, "radio.pull_reply")
            latency += fragment.latency_s
            if not fragment.delivered:
                return self._pull_failed(query, fallback, latency)
            remaining -= chunk
        aged_std = 0.0 if level == 0 else 0.05 * (2.0 ** level)
        self._insert_batch(
            query.sensor, times, values, aged_std, EntrySource.PULLED
        )
        self.pull_stats.bytes_pulled += reply_bytes
        if query.kind is QueryKind.PAST_POINT:
            offset = int(np.argmin(np.abs(times - query.target_time)))
            value = float(values[offset])
        else:
            in_window = values[(times >= start) & (times <= end)]
            if in_window.size == 0:
                # An aged/coarsened archive reply can retain only timestamps
                # outside the requested window; degrade, don't crash.
                return self._pull_failed(query, fallback, latency)
            value = self._aggregate(in_window, query.aggregate)
        return QueryAnswer(
            query=query,
            value=value,
            source=AnswerSource.SENSOR_PULL,
            latency_s=latency,
            believed_std=aged_std,
            sensor_energy_j=sensor_obj.meter.total_j - before,
            pulled_bytes=reply_bytes,
        )

    def _pull_failed(
        self,
        query: Query,
        fallback: tuple[Estimate, str] | None,
        latency_so_far: float,
    ) -> QueryAnswer:
        """Pull gave up: degrade to the best model estimate, else fail."""
        self.pull_stats.failures += 1
        if fallback is not None:
            estimate, method = fallback
            return QueryAnswer(
                query=query,
                value=estimate.value,
                source=(
                    AnswerSource.SPATIAL
                    if method == "spatial"
                    else AnswerSource.PREDICTION
                ),
                latency_s=self.config.proxy_processing_s + latency_so_far,
                believed_std=estimate.std,
            )
        return QueryAnswer(
            query=query,
            value=None,
            source=AnswerSource.FAILED,
            latency_s=self.config.proxy_processing_s + latency_so_far,
        )

    # -- replication ------------------------------------------------------------

    def export_replica_state(
        self, sensor: int, max_entries: int
    ) -> tuple[CacheSnapshot, ProxyModelTracker | None]:
        """Snapshot one sensor's hot state for replication to another proxy.

        Returns a columnar snapshot of the newest *max_entries* summary-cache
        entries (array copies, not per-entry deep copies) plus an independent
        copy of the sensor's model tracker (or None before the first model
        activates) — the "caches and prediction models ... further replicated
        at the wired proxies" of Section 5.
        """
        snapshot = self.cache.tail_snapshot(sensor, max_entries)
        tracker = self._states[sensor].tracker
        return snapshot, copy.deepcopy(tracker) if tracker is not None else None

    # -- stats ------------------------------------------------------------------

    def answer_mix(self) -> dict[str, int]:
        """Histogram of answer sources so far."""
        mix: dict[str, int] = {}
        for answer in self.answers:
            mix[answer.source.value] = mix.get(answer.source.value, 0) + 1
        return mix
