"""The proxy's prediction engine.

Responsible for the three roles Section 3 assigns it:

* **model-driven push** — fit a model per sensor on the reconstructed
  stream and produce the :class:`~repro.core.push.ModelUpdate` to ship;
* **data extrapolation** — estimate a sensor's value at instants with no
  cache entry, temporally (forecast from the last known epoch) and
  spatially (condition a multivariate Gaussian on co-located sensors);
* **confidence** — every estimate carries a standard deviation so the proxy
  can honour query precision bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import SummaryCache
from repro.core.config import PrestoConfig
from repro.core.push import ModelUpdate
from repro.timeseries.ar import ARModel
from repro.timeseries.arima import ARIMAModel
from repro.timeseries.base import TimeSeriesModel
from repro.timeseries.gaussian import MultivariateGaussianModel
from repro.timeseries.markov import MarkovChainModel
from repro.timeseries.seasonal import SeasonalProfileModel


@dataclass(frozen=True)
class Estimate:
    """A value estimate with confidence."""

    value: float
    std: float


class PredictionEngine:
    """Per-sensor model management plus spatial correlation."""

    def __init__(self, config: PrestoConfig, n_sensors: int) -> None:
        self.config = config
        self.n_sensors = int(n_sensors)
        self._models: dict[int, TimeSeriesModel] = {}
        self._spatial: MultivariateGaussianModel | None = None
        self.refits = 0

    # -- model construction -------------------------------------------------

    def make_model(self) -> TimeSeriesModel:
        """Fresh, unfitted model of the configured family."""
        cfg = self.config
        if cfg.model_kind == "seasonal":
            return SeasonalProfileModel(
                bins=cfg.seasonal_bins, sample_period_s=cfg.sample_period_s
            )
        if cfg.model_kind == "ar":
            return ARModel(order=cfg.ar_order, sample_period_s=cfg.sample_period_s)
        if cfg.model_kind == "arima":
            return ARIMAModel(
                order=cfg.arima_order, sample_period_s=cfg.sample_period_s
            )
        if cfg.model_kind == "markov":
            return MarkovChainModel(
                n_states=cfg.markov_states, sample_period_s=cfg.sample_period_s
            )
        if cfg.model_kind == "sarima":
            from repro.timeseries.sarima import SeasonalArimaModel

            season = max(int(round(86_400.0 / cfg.sample_period_s)), 2)
            return SeasonalArimaModel(
                season_length=season, sample_period_s=cfg.sample_period_s
            )
        raise ValueError(f"unknown model kind {cfg.model_kind!r}")

    def refit(
        self,
        sensor: int,
        values: np.ndarray,
        timestamps: np.ndarray,
        delta: float | None = None,
    ) -> ModelUpdate | None:
        """Refit *sensor*'s model on a reconstructed window.

        *delta* is the push threshold to embed in the update — normally the
        matcher's current choice, so a retuned threshold survives refits.
        Returns the :class:`ModelUpdate` to ship, or None when the window is
        still too short or the fit fails (sensor keeps pushing everything).
        """
        if values.size < self.config.min_training_epochs:
            return None
        model = self.make_model()
        try:
            model.fit(np.asarray(values, dtype=np.float64),
                      np.asarray(timestamps, dtype=np.float64))
        except (ValueError, RuntimeError, np.linalg.LinAlgError):
            return None
        self._models[sensor] = model
        self.refits += 1
        return ModelUpdate(
            model=model,
            delta=self.config.push_delta if delta is None else float(delta),
        )

    def model_for(self, sensor: int) -> TimeSeriesModel | None:
        """The sensor's current fitted model, if any."""
        return self._models.get(sensor)

    # -- temporal extrapolation ------------------------------------------------

    def extrapolate_temporal(
        self, sensor: int, target_time: float, cache: SummaryCache
    ) -> Estimate | None:
        """Estimate the value at *target_time* from the cached series.

        Strategy: take the nearest cache entries around the target; if the
        model is seasonal, evaluate its profile directly at the target time
        and anchor it with the nearest actual offset; otherwise interpolate
        between neighbours / forecast from the latest entry, inflating the
        std with temporal distance.
        """
        model = self._models.get(sensor)
        period = self.config.sample_period_s
        nearest = cache.entry_at(sensor, target_time, tolerance_s=0.5 * period)
        if nearest is not None:
            return Estimate(value=nearest.value, std=nearest.std)

        if isinstance(model, SeasonalProfileModel):
            value = model.predict_at(target_time)
            return Estimate(value=value, std=model.residual_std)

        latest = cache.latest(sensor)
        if latest is None:
            return None
        gap_epochs = max(int(abs(target_time - latest.timestamp) / period), 1)
        if model is not None:
            try:
                forecast = model.forecast(min(gap_epochs, 4096))
                std = float(forecast.std[-1])
            except (RuntimeError, ValueError):
                std = (latest.std or 0.1) * np.sqrt(gap_epochs)
            # anchor on the cached value rather than the stale stream state
            value = latest.value
            return Estimate(value=value, std=max(std, latest.std))
        std = (latest.std if latest.std > 0 else 0.1) * np.sqrt(gap_epochs)
        return Estimate(value=latest.value, std=std)

    # -- spatial extrapolation -------------------------------------------------

    def fit_spatial(self, aligned_readings: np.ndarray) -> None:
        """Fit the joint Gaussian from (epochs x sensors) aligned data."""
        self._spatial = MultivariateGaussianModel().fit(aligned_readings)

    @property
    def has_spatial(self) -> bool:
        """Whether a spatial model is available."""
        return self._spatial is not None

    def extrapolate_spatial(
        self,
        sensor: int,
        target_time: float,
        cache: SummaryCache,
        tolerance_s: float | None = None,
    ) -> Estimate | None:
        """Condition the joint Gaussian on co-located sensors' cached values.

        Only *actual* (pushed/pulled) neighbour entries within the tolerance
        window are used as evidence — conditioning on other guesses would
        launder uncertainty.
        """
        if self._spatial is None:
            return None
        tolerance = tolerance_s if tolerance_s is not None else self.config.sample_period_s
        observed: dict[int, float] = {}
        for other in range(self.n_sensors):
            if other == sensor:
                continue
            value = cache.actual_value_at(other, target_time, tolerance_s=tolerance)
            if value is not None:
                observed[other] = value
        if not observed:
            return None
        try:
            value, std = self._spatial.estimate(sensor, observed)
        except (IndexError, np.linalg.LinAlgError):
            return None
        return Estimate(value=float(value), std=float(std))

    # -- combined ---------------------------------------------------------------

    def best_estimate(
        self, sensor: int, target_time: float, cache: SummaryCache
    ) -> tuple[Estimate, str] | None:
        """Lowest-std estimate across temporal and spatial extrapolation.

        Returns ``(estimate, method)`` with method in {"temporal",
        "spatial"}, or None when neither path has evidence.
        """
        temporal = self.extrapolate_temporal(sensor, target_time, cache)
        spatial = (
            self.extrapolate_spatial(sensor, target_time, cache)
            if self.config.spatial_extrapolation
            else None
        )
        candidates: list[tuple[Estimate, str]] = []
        if temporal is not None:
            candidates.append((temporal, "temporal"))
        if spatial is not None:
            candidates.append((spatial, "spatial"))
        if not candidates:
            return None
        return min(candidates, key=lambda pair: pair[0].std)
