"""The PRESTO sensor.

"PRESTO is a proxy-centric architecture where much of the intelligence
resides at the proxy, and the remote sensor is kept simple ... simple, yet
highly tunable and can be completely controlled by the proxy" (Section 4).

The sensor does exactly four things, all proxy-directed:

1. archives every reading locally (:class:`~repro.storage.archive.SensorArchive`);
2. verifies each reading against the proxy-supplied model and transmits
   only on failure (or batches, when so instructed);
3. serves archive pulls on proxy cache misses;
4. applies operating-point retunes (duty cycle, delta, batching,
   compression) shipped by the proxy.

Every radio byte, flash page and CPU cycle charges the node's energy meter.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PrestoConfig
from repro.core.matching import SensorOperatingPoint
from repro.core.push import ModelUpdate, SensorModelChecker
from repro.energy.constants import (
    COMPRESS_CYCLES_PER_BYTE,
    MODEL_CHECK_CYCLES,
    SAMPLE_ACQUIRE_CYCLES,
    WAVELET_CYCLES_PER_SAMPLE,
)
from repro.energy.meter import EnergyMeter
from repro.radio.mac import LplMac
from repro.radio.network import Network
from repro.radio.packet import Packet, PacketKind
from repro.signal.codecs import encoded_size_bytes
from repro.signal.compress import (
    compress_block,
    compressed_size_bytes,
    decompress_block,
)
from repro.storage.archive import SensorArchive
from repro.sync.clock import DriftingClock

#: bytes of a single pushed reading: epoch (4) + value (4) + local time (4)
PUSH_PAYLOAD_BYTES = 12
#: bytes of a pull request: window start/end (8) + kind/flags (4)
PULL_REQUEST_BYTES = 12


class PrestoSensor:
    """One remote sensor node in a PRESTO cell."""

    def __init__(
        self,
        sensor_id: int,
        name: str,
        config: PrestoConfig,
        network: Network,
        mac: LplMac,
        meter: EnergyMeter,
        archive: SensorArchive,
        proxy_name: str = "proxy",
        clock: DriftingClock | None = None,
    ) -> None:
        self.sensor_id = int(sensor_id)
        self.name = name
        self.config = config
        self.network = network
        self.mac = mac
        self.meter = meter
        self.archive = archive
        self.proxy_name = proxy_name
        self.clock = clock

        self.epoch = -1                      # last sampled epoch index
        self.checker: SensorModelChecker | None = None
        self._pending_update: ModelUpdate | None = None
        self.operating_point = SensorOperatingPoint(
            check_interval_s=config.default_check_interval_s,
            push_delta=config.push_delta,
            batch_interval_s=config.batch_interval_s,
            quant_step=config.batch_quant_step,
            use_wavelet=config.batch_use_wavelet,
        )
        self._batch_times: list[float] = []
        self._batch_values: list[float] = []
        self._batch_started_at: float | None = None

        self.samples_taken = 0
        self.pushes_sent = 0
        self.batches_sent = 0
        self.pulls_served = 0
        self.cold_pushes = 0
        self._last_reading: tuple[float, float] | None = None

    # -- sampling ----------------------------------------------------------

    def on_sample(self, true_time: float, value: float) -> None:
        """Process one reading: archive it, then decide whether to transmit."""
        self.epoch += 1
        self.samples_taken += 1
        cpu = self.config.node_profile.cpu
        self.meter.charge("cpu.sample", cpu.energy_for_cycles(SAMPLE_ACQUIRE_CYCLES))
        local_time = self.clock.read(true_time) if self.clock else true_time
        self._last_reading = (true_time, float(value))
        self.archive.append(true_time, value)

        self._maybe_activate_model()

        if self.operating_point.batch_interval_s > 0:
            self._batch(true_time, value)
            return

        if self.checker is None:
            # Cold start: no model yet, push every reading so the proxy can
            # build a training window.
            if self._send_push(value, local_time):
                self.cold_pushes += 1
            return

        self.meter.charge(
            "cpu.model_check",
            cpu.energy_for_cycles(max(self.checker.check_cycles, MODEL_CHECK_CYCLES)),
        )
        decision = self.checker.process(value)
        if decision.push:
            if self._send_push(value, local_time):
                self.pushes_sent += 1

    def on_missed_sample(self) -> None:
        """Account for an epoch whose reading was lost (sensing dropout).

        The model replica must advance exactly once per epoch on both sides,
        so a missed reading is treated as "as predicted": the checker
        observes its own prediction, mirroring the proxy's silent advance.
        Advancing the model costs the same CPU as verifying a reading, so
        the check energy is charged here too — dropout does not make the
        model loop free.
        """
        self.epoch += 1
        self._maybe_activate_model()
        if self.operating_point.batch_interval_s > 0 or self.checker is None:
            return
        cpu = self.config.node_profile.cpu
        self.meter.charge(
            "cpu.model_check",
            cpu.energy_for_cycles(max(self.checker.check_cycles, MODEL_CHECK_CYCLES)),
        )
        self.checker.advance_silent()

    def _maybe_activate_model(self) -> None:
        update = self._pending_update
        if update is not None and self.epoch >= update.activation_epoch:
            self.checker = SensorModelChecker(update)
            self._pending_update = None

    def _send_push(self, value: float, local_time: float) -> bool:
        packet = Packet(
            kind=PacketKind.PUSH,
            src=self.name,
            dst=self.proxy_name,
            payload_bytes=PUSH_PAYLOAD_BYTES,
            payload={
                "sensor": self.sensor_id,
                "epoch": self.epoch,
                "value": float(value),
                "local_time": float(local_time),
            },
        )
        outcome = self.network.send(packet, energy_category="radio.push")
        return outcome.delivered

    # -- batching ---------------------------------------------------------------

    def _batch(self, true_time: float, value: float) -> None:
        if self._batch_started_at is None:
            self._batch_started_at = true_time
        self._batch_times.append(true_time)
        self._batch_values.append(float(value))
        if true_time - self._batch_started_at >= self.operating_point.batch_interval_s:
            self.flush_batch()

    def flush_batch(self) -> None:
        """Compress and transmit the accumulated batch (if any)."""
        if not self._batch_values:
            return
        values = np.asarray(self._batch_values, dtype=np.float64)
        times = np.asarray(self._batch_times, dtype=np.float64)
        cpu = self.config.node_profile.cpu
        point = self.operating_point
        if point.use_wavelet and values.size >= 4:
            self.meter.charge(
                "cpu.compress",
                cpu.energy_for_cycles(WAVELET_CYCLES_PER_SAMPLE * values.size),
            )
            block = compress_block(values, quant_step=point.quant_step)
            payload_bytes = compressed_size_bytes(block)
            decoded = decompress_block(block)
        else:
            payload_bytes = encoded_size_bytes(values, step=point.quant_step)
            decoded = values
        self.meter.charge(
            "cpu.compress",
            cpu.energy_for_cycles(COMPRESS_CYCLES_PER_BYTE * payload_bytes),
        )
        packet = Packet(
            kind=PacketKind.BATCH,
            src=self.name,
            dst=self.proxy_name,
            payload_bytes=payload_bytes + 8,  # + batch header
            payload={
                "sensor": self.sensor_id,
                "timestamps": times,
                "values": np.asarray(decoded, dtype=np.float64),
                "quant_step": point.quant_step,
            },
        )
        outcome = self.network.send(packet, energy_category="radio.batch")
        if outcome.delivered:
            self.batches_sent += 1
        self._batch_times = []
        self._batch_values = []
        self._batch_started_at = None

    # -- proxy-directed control ---------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Dispatch a downlink packet from the proxy."""
        if packet.kind is PacketKind.MODEL_UPDATE:
            update: ModelUpdate = packet.payload
            self._pending_update = update
            self._maybe_activate_model()
        elif packet.kind is PacketKind.OPERATING_POINT:
            self.apply_operating_point(packet.payload)
        elif packet.kind is PacketKind.PULL_REQUEST:
            # Pulls are served synchronously through serve_pull(); packets of
            # this kind arriving via the event path are acknowledgements only.
            pass
        else:
            raise ValueError(f"sensor cannot handle {packet.kind}")

    def apply_operating_point(self, point: SensorOperatingPoint) -> None:
        """Retune radio duty cycle / delta / batching as the proxy asks."""
        previous_batching = self.operating_point.batch_interval_s > 0
        self.operating_point = point
        self.mac.set_check_interval(point.check_interval_s)
        if self.checker is not None:
            self.checker.delta = point.push_delta
        if previous_batching and point.batch_interval_s == 0:
            self.flush_batch()

    # -- archive pulls ----------------------------------------------------------

    def serve_pull(
        self, start: float, end: float
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Read ``[start, end]`` from the archive for a proxy pull.

        Returns ``(timestamps, values, resolution_level, reply_bytes)``;
        flash read energy is charged by the archive itself.  Unflushed
        buffered readings are flushed first so the freshest data is
        servable (costing the flush's flash writes, as on a real node).
        """
        self.archive.flush()
        times, values, level = self.archive.read_range(start, end)
        self.pulls_served += 1
        reply_bytes = max(int(values.size) * 8, 8)
        return times, values, level, reply_bytes

    def current_reading(self) -> tuple[float, float] | None:
        """Latest sampled (time, value) for NOW pulls, if any exists.

        Served from RAM — the freshest reading is still in the sensor's
        working memory on a real node, so no flash read is charged.
        """
        return self._last_reading

    # -- stats -------------------------------------------------------------------

    @property
    def push_fraction(self) -> float:
        """Fraction of samples transmitted individually."""
        if self.samples_taken == 0:
            return 0.0
        return (self.pushes_sent + self.cold_pushes) / self.samples_taken
