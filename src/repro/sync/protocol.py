"""Reference-broadcast time synchronisation at the proxy.

The proxy periodically broadcasts its own (tethered, authoritative) time;
each sensor replies with its local clock reading at reception.  Collecting
``(proxy_time, local_time)`` pairs, the proxy fits ``local ≈ a * proxy + b``
by least squares and corrects any sensor timestamp via the inverse map.
With two or more exchanges this recovers both offset and skew; residual
error is bounded by the (small) broadcast jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SyncEstimate:
    """Fitted clock map for one sensor: ``local = rate * true + offset``."""

    rate: float = 1.0
    offset: float = 0.0
    n_samples: int = 0
    residual_std_s: float = 0.0

    def correct(self, local_time: float) -> float:
        """Map a sensor-local timestamp back to proxy (true) time."""
        return (local_time - self.offset) / self.rate

    def project(self, proxy_time: float) -> float:
        """Map a proxy (true) instant into the sensor's local frame.

        Exact inverse of :meth:`correct` — used to translate query windows
        into the frame the sensor's reported timestamps live in.
        """
        return self.rate * proxy_time + self.offset


class TimeSyncProtocol:
    """Per-sensor sample collection and least-squares clock fitting."""

    def __init__(self, min_samples: int = 2, window: int = 32) -> None:
        if min_samples < 2:
            raise ValueError(f"need >= 2 samples to fit skew, got {min_samples}")
        self.min_samples = int(min_samples)
        self.window = int(window)
        self._samples: dict[str, list[tuple[float, float]]] = {}
        self._estimates: dict[str, SyncEstimate] = {}

    def record_exchange(
        self, sensor: str, proxy_time: float, sensor_local_time: float
    ) -> None:
        """Store one (proxy, local) observation for *sensor*."""
        bucket = self._samples.setdefault(sensor, [])
        bucket.append((float(proxy_time), float(sensor_local_time)))
        if len(bucket) > self.window:
            del bucket[0]
        if len(bucket) >= self.min_samples:
            self._fit(sensor)

    def _fit(self, sensor: str) -> None:
        pairs = np.asarray(self._samples[sensor], dtype=np.float64)
        proxy_times = pairs[:, 0]
        local_times = pairs[:, 1]
        if np.ptp(proxy_times) <= 0:
            return
        rate, offset = np.polyfit(proxy_times, local_times, deg=1)
        predicted = rate * proxy_times + offset
        residual = float(np.std(local_times - predicted))
        self._estimates[sensor] = SyncEstimate(
            rate=float(rate),
            offset=float(offset),
            n_samples=int(pairs.shape[0]),
            residual_std_s=residual,
        )

    def estimate_for(self, sensor: str) -> SyncEstimate | None:
        """Current estimate, or None before enough exchanges."""
        return self._estimates.get(sensor)

    def correct(self, sensor: str, local_time: float) -> float:
        """Correct a local timestamp; identity until an estimate exists."""
        estimate = self._estimates.get(sensor)
        if estimate is None:
            return local_time
        return estimate.correct(local_time)

    def project(self, sensor: str, proxy_time: float) -> float:
        """Map a proxy instant into *sensor*'s local frame (inverse of
        :meth:`correct`); identity until an estimate exists."""
        estimate = self._estimates.get(sensor)
        if estimate is None:
            return proxy_time
        return estimate.project(proxy_time)

    def max_residual_s(self) -> float:
        """Worst residual std across sensors (sync quality indicator)."""
        if not self._estimates:
            return 0.0
        return max(e.residual_std_s for e in self._estimates.values())
