"""Temporal consistency: clock drift, skew, and correction.

Section 5: "Drift and skew of clocks at the remote sensors can result in
erroneous timestamps, which need to be corrected to provide an accurate
temporal view of data."  This package models imperfect mote clocks and the
proxy-side reference-broadcast estimation that corrects sensor timestamps
before they enter the unified store.
"""

from repro.sync.clock import ClockModel, DriftingClock
from repro.sync.protocol import SyncEstimate, TimeSyncProtocol

__all__ = [
    "ClockModel",
    "DriftingClock",
    "SyncEstimate",
    "TimeSyncProtocol",
]
