"""Drifting/skewed clock models for remote sensors.

A mote clock reads ``local = offset + (1 + skew) * true + integrated
random-walk drift``.  Crystal skews of tens of ppm accumulate to seconds per
day — enough to misorder readings between neighbouring sensors, which is why
the unified store corrects timestamps before indexing them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClockModel:
    """Statistical parameters of a clock population."""

    offset_std_s: float = 0.5          # initial desynchronisation
    skew_ppm_std: float = 40.0         # crystal tolerance (ppm)
    drift_random_walk: float = 1e-8    # per-second skew random walk


class DriftingClock:
    """One sensor's clock.

    ``read(true_time)`` converts simulator (true) time to the sensor's local
    time; ``invert(local_time)`` is the exact inverse, available only to
    test code and the sync estimator's ground-truth checks.
    """

    def __init__(
        self, model: ClockModel, rng: np.random.Generator, node_name: str = "sensor"
    ) -> None:
        self.model = model
        self.node_name = node_name
        self._offset = float(rng.normal(0.0, model.offset_std_s))
        self._skew = float(rng.normal(0.0, model.skew_ppm_std * 1e-6))
        self._rng = rng
        self._walk = 0.0
        self._walk_time = 0.0

    @property
    def offset_s(self) -> float:
        """Constant offset component."""
        return self._offset

    @property
    def skew(self) -> float:
        """Fractional rate error (dimensionless, e.g. 40e-6)."""
        return self._skew

    def advance_walk(self, true_time: float) -> None:
        """Evolve the random-walk drift up to *true_time*."""
        dt = true_time - self._walk_time
        if dt <= 0:
            return
        self._walk += float(
            self._rng.normal(0.0, self.model.drift_random_walk * np.sqrt(dt))
        ) * dt
        self._walk_time = true_time

    def read(self, true_time: float) -> float:
        """Local clock reading at *true_time*."""
        return self._offset + (1.0 + self._skew) * true_time + self._walk

    def invert(self, local_time: float) -> float:
        """True time corresponding to *local_time* (oracle inverse)."""
        return (local_time - self._offset - self._walk) / (1.0 + self._skew)
